//! Population Monte Carlo fleet driver.
//!
//! Calibrates a quick engine on `--benchmark`, simulates `--chips` chips
//! per node through `ramp_fleet::run_fleet`, and reports the population
//! statistics the paper's single-average-chip tables cannot show: lifetime
//! quantiles (p1/p10/p50/p90/p99), cumulative warranty-return DPPM per
//! year, the dominant killer mechanism, and the simulation throughput in
//! chips/second.
//!
//! ```text
//! fleet [--chips N] [--seed S] [--benchmark B] [--nodes a,b,...]
//!       [--threads T] [--chunk C] [--out FILE] [--csv FILE]
//!       [--assert-deterministic]
//! ```
//!
//! * `--nodes` — comma-separated display labels (`180nm`, `65nm (1.0V)`,
//!   ...); defaults to all five study nodes.
//! * `--out` — write the full results (plus `population_digest`) as JSON.
//! * `--csv` — write per-(node, year) cumulative DPPM warranty curves.
//! * `--assert-deterministic` — CI shape: rerun the fleet at different
//!   thread counts and chunk sizes and require byte-identical canonical
//!   output.
//!
//! Exit codes: 0 = run (and determinism assertions, if requested) passed,
//! 1 = assertion or run failure, 2 = usage error.

use ramp_core::{NodeId, QueryEngine, StudyConfig};
use ramp_fleet::{run_fleet, FleetConfig, FleetResults};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    chips: u64,
    seed: u64,
    benchmark: String,
    nodes: Vec<NodeId>,
    threads: Option<usize>,
    chunk: u64,
    out: Option<PathBuf>,
    csv: Option<PathBuf>,
    assert_deterministic: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        chips: 1_000_000,
        seed: 42,
        benchmark: "gzip".to_string(),
        nodes: NodeId::ALL.to_vec(),
        threads: None,
        chunk: 8192,
        out: None,
        csv: None,
        assert_deterministic: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--chips" => {
                args.chips = value("--chips")?
                    .parse()
                    .map_err(|e| format!("--chips: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--benchmark" => args.benchmark = value("--benchmark")?,
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(|label| {
                        NodeId::from_label(label)
                            .ok_or_else(|| format!("--nodes: unknown node label {label:?}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                );
            }
            "--chunk" => {
                args.chunk = value("--chunk")?
                    .parse()
                    .map_err(|e| format!("--chunk: {e}"))?;
            }
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--csv" => args.csv = Some(PathBuf::from(value("--csv")?)),
            "--assert-deterministic" => args.assert_deterministic = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.chips == 0 {
        return Err("--chips must be positive".to_string());
    }
    if args.nodes.is_empty() {
        return Err("--nodes must name at least one node".to_string());
    }
    Ok(args)
}

fn fleet_config(args: &Args) -> FleetConfig {
    FleetConfig {
        benchmark: args.benchmark.clone(),
        nodes: args.nodes.clone(),
        chips: args.chips,
        seed: args.seed,
        chunk: args.chunk,
        threads: args.threads,
        ..FleetConfig::default()
    }
}

fn print_report(results: &FleetResults) {
    println!(
        "fleet: {} chips/node on {:?}, seed {}",
        results.chips_per_node, results.benchmark, results.seed
    );
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9}  {:>11} {:>11}  top killer",
        "node", "p1 (y)", "p10 (y)", "p50 (y)", "p90 (y)", "p99 (y)", "dppm@5y", "dppm@10y"
    );
    for pop in &results.populations {
        let s = &pop.summary;
        let (killer, count) = ["EM", "SM", "TDDB", "TC"]
            .iter()
            .zip(s.killer_counts.iter())
            .max_by_key(|(_, &n)| n)
            .map_or(("-", 0), |(k, &n)| (*k, n));
        println!(
            "{:<12} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}  {:>11.1} {:>11.1}  {} ({:.0}%)",
            pop.label,
            s.p1_years,
            s.p10_years,
            s.p50_years,
            s.p90_years,
            s.p99_years,
            s.dppm_by_year[4],
            s.dppm_by_year[9],
            killer,
            count as f64 / s.chips.max(1) as f64 * 100.0,
        );
    }
    println!(
        "throughput: {:.0} chips/sec over {:.2}s  population_digest: {}",
        results.chips_per_sec,
        results.elapsed_seconds,
        results.population_digest()
    );
}

/// Reruns the fleet with scheduling deliberately perturbed and demands
/// byte-identical canonical output. The baseline already ran; each rerun
/// varies (threads, chunk) only — parameters the determinism contract says
/// cannot matter.
fn assert_deterministic(
    engine: &QueryEngine,
    base: &FleetResults,
    args: &Args,
) -> Result<(), String> {
    let reference = base.population_json();
    for (threads, chunk) in [(1, args.chunk.max(2) / 2 + 1), (2, 977), (8, args.chunk)] {
        let rerun = run_fleet(
            engine,
            &FleetConfig {
                threads: Some(threads),
                chunk,
                ..fleet_config(args)
            },
        )
        .map_err(|e| format!("rerun threads={threads} chunk={chunk}: {e}"))?;
        if rerun.population_json() != reference {
            return Err(format!(
                "population diverged at threads={threads} chunk={chunk} (digest {} vs {})",
                rerun.population_digest(),
                base.population_digest()
            ));
        }
        println!("deterministic: threads={threads} chunk={chunk} byte-identical");
    }
    Ok(())
}

fn write_artifacts(results: &FleetResults, args: &Args) -> Result<(), String> {
    if let Some(path) = &args.out {
        // Owned because the vendored serde derive cannot handle borrowed
        // fields; one clone per artifact write is immaterial.
        #[derive(serde::Serialize)]
        struct FleetArtifact {
            population_digest: String,
            results: FleetResults,
        }
        let body = serde_json::to_string_pretty(&FleetArtifact {
            population_digest: results.population_digest(),
            results: results.clone(),
        })
        .map_err(|e| format!("serialize results: {e}"))?;
        std::fs::write(path, body).map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, results.warranty_csv())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    ramp_obs::init_from_env();
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("fleet: {e}");
            return ExitCode::from(2);
        }
    };

    let config = match StudyConfig::quick().with_benchmarks(&[args.benchmark.as_str()]) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("fleet: {e}");
            return ExitCode::from(2);
        }
    };
    let engine = match QueryEngine::calibrate(&config) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("fleet: calibration failed: {e}");
            return ExitCode::from(1);
        }
    };

    let results = match run_fleet(&engine, &fleet_config(&args)) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("fleet: run failed: {e}");
            return ExitCode::from(1);
        }
    };
    print_report(&results);

    if let Err(e) = write_artifacts(&results, &args) {
        eprintln!("fleet: {e}");
        return ExitCode::from(1);
    }

    if args.assert_deterministic {
        if let Err(e) = assert_deterministic(&engine, &results, &args) {
            eprintln!("fleet: ASSERTION FAILED: {e}");
            return ExitCode::from(1);
        }
        println!("determinism assertions passed");
    }
    ExitCode::SUCCESS
}
