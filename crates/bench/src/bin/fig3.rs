//! Figure 3: total processor FIT value for each application across
//! technology generations, plus the worst-case (`max`) curve computed from
//! the highest temperature and activity seen by any application.

use ramp_bench::{fit_cell, load_or_run_study};
use ramp_core::NodeId;
use ramp_trace::{spec, Suite};

fn main() {
    ramp_bench::init_obs();
    let results = load_or_run_study();

    for (panel, suite) in [("(a) SpecFP", Suite::Fp), ("(b) SpecInt", Suite::Int)] {
        println!("Figure 3 {panel}: total processor FIT");
        print!("{:<10}", "app");
        for id in NodeId::ALL {
            print!(" {:>12}", id.label());
        }
        println!();
        for profile in spec::suite_profiles(suite) {
            print!("{:<10}", profile.name);
            for id in NodeId::ALL {
                let r = results
                    .result(&profile.name, id)
                    .expect("study covers all app/node pairs");
                print!(" {:>12}", fit_cell(r.fit.total()));
            }
            println!();
        }
        print!("{:<10}", "max");
        for id in NodeId::ALL {
            let wc = results.worst_case(id).expect("worst case per node");
            print!(" {:>12}", fit_cell(wc.fit.total()));
        }
        println!();
        println!();
        if ramp_bench::plot::plot_requested() {
            let labels: Vec<&str> = NodeId::ALL.iter().map(|id| id.label()).collect();
            let mut series: Vec<ramp_bench::plot::Series> = spec::suite_profiles(suite)
                .iter()
                .map(|p| ramp_bench::plot::Series {
                    label: p.name.clone(),
                    values: NodeId::ALL
                        .iter()
                        .map(|&id| results.result(&p.name, id).unwrap().fit.total().value())
                        .collect(),
                })
                .collect();
            series.push(ramp_bench::plot::Series {
                label: "max (worst case)".into(),
                values: NodeId::ALL
                    .iter()
                    .map(|&id| results.worst_case(id).unwrap().fit.total().value())
                    .collect(),
            });
            println!("{}", ramp_bench::plot::render(&labels, &series, 18));
        }
    }

    println!("workload dependence (paper §5.2):");
    for id in [NodeId::N180, NodeId::N65LowV, NodeId::N65HighV] {
        println!(
            "  {:<12} worst-case vs hottest app {:+.0}%  vs average {:+.0}%  app range {:.0} FIT ({:.0}% of average)",
            id.label(),
            results.worst_case_margin_over_max(id).expect("node present"),
            results
                .worst_case_margin_over_average(id)
                .expect("node present"),
            results.fit_range(id),
            results.fit_range(id) / results.overall_average_fit(id).value() * 100.0,
        );
    }
    println!("(paper: margins 25%→90% and 67%→206%; range 2479 FIT (62%) → 17272 FIT (104%))");
}
