//! Benchmark telemetry: versioned `BENCH_<seq>.json` snapshots, a
//! median-of-K measurement harness over the reference study workload, and
//! a noise-aware performance gate with exact numerical drift detection.
//!
//! # Snapshot model
//!
//! A [`BenchSnapshot`] freezes one harness run: per-stage wall-clock
//! statistics harvested from the `ramp-obs` span tree, timing-cache
//! effectiveness, executor utilization, histogram percentiles, and — the
//! part that must never drift — the study's numerical outputs (per-node
//! and per-mechanism FIT plus an FNV-1a digest of the full serialized
//! [`StudyResults`]). Snapshots are append-only files named
//! `BENCH_0001.json`, `BENCH_0002.json`, … at the repository root.
//!
//! # Gate semantics
//!
//! [`compare`] applies two very different standards:
//!
//! * **Wall-clock is noisy** — each stage gets a budget of
//!   `baseline_median × tolerance + spread_slack × (baseline_max −
//!   baseline_min)`, and stages whose baseline median sits below
//!   `min_stage_seconds` are reported but never gated (timer jitter
//!   dominates them).
//! * **Numbers are exact** — the results digest, the per-node FIT table,
//!   and the per-mechanism FIT table must match *bit for bit*. The study
//!   is byte-deterministic across thread counts and observability
//!   configurations (a tested contract), so any difference is real drift,
//!   not noise.
//!
//! A baseline taken under a different study configuration (different
//! config digest) fails fast with a "re-baseline" message rather than
//! producing meaningless deltas.

use ramp_core::{
    config_digest, fnv1a_hex, results_digest, run_study, Provenance, RunManifest, StageNode,
    StudyConfig, StudyResults,
};
use ramp_core::mechanisms::MechanismKind;
use ramp_obs::{MetricSnapshot, MetricValue};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Snapshot schema version, bumped on incompatible field changes.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Benchmarks of the reference workload: two per suite, matching the
/// `profile` binary's quick subset so snapshots and obs-smoke output
/// describe the same work.
pub const REFERENCE_BENCHMARKS: [&str; 4] = ["gzip", "vpr", "ammp", "apsi"];

/// Label stamped into snapshots and per-sample manifests.
pub const REFERENCE_LABEL: &str = "reference_workload";

/// The study configuration the harness measures: the quick pipeline over
/// [`REFERENCE_BENCHMARKS`] with the thermal trace recorded (same shape
/// as the obs-smoke run).
#[must_use]
pub fn reference_workload() -> StudyConfig {
    let mut cfg = StudyConfig::quick()
        .with_benchmarks(&REFERENCE_BENCHMARKS)
        .expect("reference benchmark subset is valid");
    cfg.pipeline.record_thermal_trace = true;
    cfg.pipeline.thermal_trace_stride = 50;
    cfg
}

// ---------------------------------------------------------------------------
// Snapshot schema
// ---------------------------------------------------------------------------

/// What the harness ran (the workload identity, not its outputs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSection {
    /// Harness label (see [`REFERENCE_LABEL`]).
    pub label: String,
    /// Benchmark names, in run order.
    pub benchmarks: Vec<String>,
    /// Node labels, in run order.
    pub nodes: Vec<String>,
    /// Measured samples (K of median-of-K).
    pub samples: u32,
    /// Worker threads the sweep used.
    pub threads: u64,
}

/// Median/min/max of one quantity across the K measured samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingStat {
    /// Median across samples, seconds.
    pub median_seconds: f64,
    /// Fastest sample, seconds.
    pub min_seconds: f64,
    /// Slowest sample, seconds.
    pub max_seconds: f64,
}

impl TimingStat {
    /// Spread (max − min) — the harness's own noise estimate.
    #[must_use]
    pub fn spread_seconds(&self) -> f64 {
        self.max_seconds - self.min_seconds
    }
}

/// Wall-clock statistics for one span path across the measured samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageStat {
    /// Full `/`-joined span path, e.g. `"study/reference/worker/run/timing"`.
    pub path: String,
    /// Spans collapsed into this path in one sample.
    pub count: u64,
    /// Timing across samples.
    pub timing: TimingStat,
    /// Median share of the total study wall-clock (0–1).
    pub share: f64,
}

/// Timing-cache effectiveness over one measured sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheSection {
    /// Cache hits during one sample.
    pub hits: u64,
    /// Cache misses during one sample.
    pub misses: u64,
    /// Hit rate (0–1; 0 when no lookups happened).
    pub hit_rate: f64,
}

/// Parallel-executor effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutorSection {
    /// Worker threads.
    pub threads: u64,
    /// Median measured speedup (serial-equivalent ÷ wall).
    pub speedup: f64,
    /// Median utilization (speedup ÷ threads, 0–1).
    pub utilization: f64,
}

/// Percentile summary of one obs histogram over the measured window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramStat {
    /// Registered metric name.
    pub name: String,
    /// Observations during the measured window.
    pub count: u64,
    /// Mean observed value.
    pub mean: f64,
    /// Estimated 50th percentile.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// One node's headline FIT numbers (exact-match gated).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeFit {
    /// Node label.
    pub node: String,
    /// Mean total FIT over the workload's benchmarks.
    pub avg_fit: f64,
    /// Highest single-benchmark total FIT.
    pub max_fit: f64,
}

/// Mean FIT of one mechanism on one node (exact-match gated).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MechanismFit {
    /// Node label.
    pub node: String,
    /// Mechanism label (`"EM"`, `"SM"`, `"TDDB"`, `"TC"`).
    pub mechanism: String,
    /// Mean FIT over the workload's benchmarks.
    pub avg_fit: f64,
}

/// The study's numerical outputs: digests plus a human-readable FIT
/// table so a failed gate can say *where* the numbers moved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumericsSection {
    /// FNV-1a digest of the study configuration — identifies the workload.
    pub config_digest: String,
    /// FNV-1a digest of the serialized [`StudyResults`] — identifies the
    /// exact numerical outcome.
    pub results_digest: String,
    /// Per-node headline FIT.
    pub nodes: Vec<NodeFit>,
    /// Per-(node, mechanism) mean FIT.
    pub mechanisms: Vec<MechanismFit>,
}

/// Population fleet telemetry: throughput (noisy, informational) plus the
/// canonical population digest (exact-match gated when both sides have
/// it). Optional because snapshots captured before the fleet simulator
/// existed lack the section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSection {
    /// Benchmark the fleet was anchored on.
    pub benchmark: String,
    /// Chips simulated per node.
    pub chips_per_node: u64,
    /// Master seed of the population run.
    pub seed: u64,
    /// Measured simulation throughput, chips per second (wall-clock
    /// derived — never gated).
    pub chips_per_sec: f64,
    /// FNV-1a digest of the canonical population JSON
    /// ([`ramp_fleet::FleetResults::population_digest`]) — exact-match
    /// gated against baselines that carry a fleet section.
    pub population_digest: String,
}

/// Heap allocations attributed to one span path during the allocation
/// telemetry pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocStageStat {
    /// Full `/`-joined span path.
    pub path: String,
    /// Heap allocations attributed to the path (own-thread, entry-to-exit).
    pub allocs: u64,
    /// Heap bytes allocated by the path's spans.
    pub bytes: u64,
}

/// Allocation telemetry from a dedicated single-threaded pass over the
/// workload with the tracking allocator on. Allocation *counts* are
/// deterministic at one thread (the digest is exact-match gated);
/// `peak_live_bytes` is a high-water gauge held to a budget rather than
/// an exact match. Optional because snapshots captured before the
/// tracking allocator existed lack the section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocSection {
    /// Worker threads of the pass (always 1 — required for determinism).
    pub threads: u64,
    /// Total heap allocations during the pass.
    pub allocs: u64,
    /// Total heap bytes allocated during the pass.
    pub alloc_bytes: u64,
    /// High-water live heap bytes observed by the tracking allocator.
    pub peak_live_bytes: u64,
    /// FNV-1a digest of the canonical per-stage allocation-count
    /// rendering (`path=count` lines, path-sorted) — exact-match gated
    /// against baselines that carry an alloc section.
    pub stage_digest: String,
    /// Per-stage allocation attribution, path-sorted.
    pub stages: Vec<AllocStageStat>,
}

/// One versioned benchmark snapshot (`BENCH_<seq>.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSnapshot {
    /// Snapshot schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Monotonic sequence number (1-based, from the file name).
    pub seq: u32,
    /// Wall-clock capture time, Unix milliseconds.
    pub created_unix_ms: u64,
    /// Host/OS/git provenance of the capturing process.
    pub provenance: Provenance,
    /// What ran.
    pub workload: WorkloadSection,
    /// Whole-study wall-clock across samples.
    pub total: TimingStat,
    /// Per-stage wall-clock statistics (flattened span tree).
    pub stages: Vec<StageStat>,
    /// Timing-cache effectiveness.
    pub cache: CacheSection,
    /// Executor effectiveness.
    pub executor: ExecutorSection,
    /// Histogram percentile summaries.
    pub histograms: Vec<HistogramStat>,
    /// Exact-match numerical outputs.
    pub numerics: NumericsSection,
    /// Fleet population telemetry (absent in pre-fleet snapshots).
    #[serde(default)]
    pub fleet: Option<FleetSection>,
    /// Allocation telemetry (absent in pre-allocator snapshots).
    #[serde(default)]
    pub alloc: Option<AllocSection>,
}

// ---------------------------------------------------------------------------
// Measurement harness
// ---------------------------------------------------------------------------

/// Harness knobs.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOptions {
    /// Measured samples (median-of-K). Clamped to ≥ 1.
    pub samples: u32,
    /// Run one unmeasured warmup sample first (pays one-time costs —
    /// allocator growth, page faults — outside the measurement).
    pub warmup: bool,
    /// Chips per node for the fleet telemetry pass (0 skips the pass and
    /// leaves the snapshot's fleet section empty). Runs after the study
    /// samples, so it never contaminates stage timings.
    pub fleet_chips: u64,
    /// Run the allocation telemetry pass (a single-threaded study with
    /// the tracking allocator on, after the timed samples, so allocator
    /// bookkeeping never contaminates stage timings).
    pub alloc_pass: bool,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            samples: 3,
            warmup: true,
            fleet_chips: 100_000,
            alloc_pass: true,
        }
    }
}

impl HarnessOptions {
    /// CI smoke shape: one sample, no warmup, a smaller fleet — fast,
    /// paired with the loose [`GateConfig::smoke`] tolerances. The alloc
    /// pass stays on: its digest is noise-free and carries the gate.
    #[must_use]
    pub fn smoke() -> Self {
        HarnessOptions {
            samples: 1,
            warmup: false,
            fleet_chips: 20_000,
            alloc_pass: true,
        }
    }
}

/// Everything one harness run produced, before being stamped into a
/// [`BenchSnapshot`].
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload identity.
    pub workload: WorkloadSection,
    /// Whole-study wall-clock across samples.
    pub total: TimingStat,
    /// Per-stage statistics.
    pub stages: Vec<StageStat>,
    /// Timing-cache effectiveness (first measured sample).
    pub cache: CacheSection,
    /// Executor effectiveness (medians across samples).
    pub executor: ExecutorSection,
    /// Histogram percentile summaries over the measured window.
    pub histograms: Vec<HistogramStat>,
    /// Exact numerical outputs.
    pub numerics: NumericsSection,
    /// Fleet population telemetry.
    pub fleet: Option<FleetSection>,
    /// Allocation telemetry.
    pub alloc: Option<AllocSection>,
    /// Serialized [`StudyResults`] bytes — identical for every sample
    /// (the harness verifies this) and identical to a run without
    /// telemetry (the byte-determinism contract).
    pub results_json: String,
    /// Per-sample run manifests (sample `i` of `samples`).
    pub manifests: Vec<RunManifest>,
}

/// Runs `config` K times and aggregates the telemetry.
///
/// Each measured sample starts from a cold timing cache and a fresh span
/// registry, so per-stage numbers describe the full pipeline, not a
/// cache replay. The serialized results of every sample must be
/// byte-identical — a mismatch is a determinism bug and fails the run.
///
/// # Errors
///
/// Returns a message when the study fails, serialization fails, or
/// inter-sample determinism is violated.
pub fn run_harness(config: &StudyConfig, opts: &HarnessOptions) -> Result<Measurement, String> {
    let samples = opts.samples.max(1);
    crate::init_obs();

    if opts.warmup {
        ramp_microarch::clear_timing_cache();
        run_study(config).map_err(|e| format!("warmup study failed: {e}"))?;
    }

    let metrics_before = ramp_obs::metrics_snapshot();
    let mut walls: Vec<f64> = Vec::new();
    let mut speedups: Vec<f64> = Vec::new();
    let mut stage_samples: Vec<Vec<(String, u64, f64)>> = Vec::new();
    let mut manifests: Vec<RunManifest> = Vec::new();
    let mut results_json: Option<String> = None;
    let mut cache = CacheSection {
        hits: 0,
        misses: 0,
        hit_rate: 0.0,
    };
    let mut last_results: Option<StudyResults> = None;

    for sample in 1..=samples {
        ramp_microarch::clear_timing_cache();
        ramp_obs::reset_spans();
        let t0 = Instant::now();
        let results = run_study(config).map_err(|e| format!("sample {sample} failed: {e}"))?;
        let wall = t0.elapsed().as_secs_f64();

        let manifest = RunManifest::capture(config, &results).with_benchmark(
            REFERENCE_LABEL,
            sample,
            samples,
        );
        stage_samples.push(flatten_stages(&manifest.stages));

        let json = serde_json::to_string(&results)
            .map_err(|e| format!("sample {sample}: results do not serialize: {e}"))?;
        match &results_json {
            None => results_json = Some(json),
            Some(first) if *first != json => {
                return Err(format!(
                    "determinism violation: sample {sample} produced different \
                     result bytes than sample 1 ({} vs {} bytes)",
                    json.len(),
                    first.len()
                ));
            }
            Some(_) => {}
        }

        let m = results.metrics();
        walls.push(wall);
        speedups.push(m.parallel_speedup());
        if sample == 1 {
            let lookups = m.cache_hits + m.cache_misses;
            cache = CacheSection {
                hits: m.cache_hits,
                misses: m.cache_misses,
                hit_rate: if lookups > 0 {
                    m.cache_hits as f64 / lookups as f64
                } else {
                    0.0
                },
            };
        }
        manifests.push(manifest);
        last_results = Some(results);
    }
    let metrics_after = ramp_obs::metrics_snapshot();

    // Fleet telemetry pass — deliberately after `metrics_after`, so its
    // spans and counters cannot leak into the measured window above.
    let fleet = if opts.fleet_chips > 0 {
        Some(fleet_section(config, opts.fleet_chips)?)
    } else {
        None
    };

    let results = last_results.expect("samples >= 1");
    let results_json = results_json.expect("samples >= 1");

    // Allocation telemetry pass — also after `metrics_after`, and last,
    // so tracking-allocator bookkeeping touches neither the timed
    // samples nor the fleet throughput number.
    let alloc = if opts.alloc_pass {
        Some(alloc_section(config, &results_json)?)
    } else {
        None
    };
    let threads = manifests[0].threads;

    let total = timing_stat(&walls);
    let speedup = median(&speedups);

    Ok(Measurement {
        workload: WorkloadSection {
            label: REFERENCE_LABEL.to_string(),
            benchmarks: config.benchmarks.iter().map(|p| p.name.clone()).collect(),
            nodes: config.nodes.iter().map(|n| n.label().to_string()).collect(),
            samples,
            threads,
        },
        total,
        stages: aggregate_stages(&stage_samples, total.median_seconds),
        cache,
        executor: ExecutorSection {
            threads,
            speedup,
            utilization: if threads > 0 {
                (speedup / threads as f64).min(1.0)
            } else {
                0.0
            },
        },
        histograms: histogram_stats(&metrics_before, &metrics_after),
        numerics: numerics_section(config, &results),
        fleet,
        alloc,
        results_json,
        manifests,
    })
}

/// Canonical rendering the alloc digest is taken over: one
/// `path=count` line per stage, path-sorted. Counts only — byte totals
/// can legitimately vary with allocator growth policy, counts cannot.
fn alloc_stage_canonical(stages: &[AllocStageStat]) -> String {
    let mut out = String::new();
    for s in stages {
        out.push_str(&s.path);
        out.push('=');
        out.push_str(&s.allocs.to_string());
        out.push('\n');
    }
    out
}

/// Runs the allocation telemetry pass: the same workload, one worker
/// thread, tracking allocator on. Single-threaded execution makes the
/// per-stage allocation *counts* exactly reproducible, so the section's
/// digest can be gated like the results digest. The pass also re-checks
/// the byte-determinism contract: its results must match the timed
/// samples bit for bit even though the thread count and the allocator
/// instrumentation differ.
fn alloc_section(config: &StudyConfig, expected_json: &str) -> Result<AllocSection, String> {
    let mut cfg = config.clone();
    cfg.threads = 1;
    ramp_microarch::clear_timing_cache();
    ramp_obs::reset_spans();
    let before = ramp_obs::alloc_stats();
    ramp_obs::set_alloc_tracking(true);
    let outcome = run_study(&cfg);
    ramp_obs::set_alloc_tracking(false);
    let after = ramp_obs::alloc_stats();
    let results = outcome.map_err(|e| format!("alloc pass failed: {e}"))?;

    let json = serde_json::to_string(&results)
        .map_err(|e| format!("alloc pass: results do not serialize: {e}"))?;
    if json != expected_json {
        return Err(format!(
            "determinism violation: the alloc pass (threads=1, tracking on) produced \
             different result bytes than the timed samples ({} vs {} bytes)",
            json.len(),
            expected_json.len()
        ));
    }

    let delta = after.delta_since(&before);
    let stages: Vec<AllocStageStat> = ramp_obs::span_stats()
        .into_iter()
        .map(|s| AllocStageStat {
            path: s.path,
            allocs: s.alloc_count,
            bytes: s.alloc_bytes,
        })
        .collect();
    Ok(AllocSection {
        threads: 1,
        allocs: delta.allocs,
        alloc_bytes: delta.alloc_bytes,
        peak_live_bytes: after.peak_live_bytes,
        stage_digest: fnv1a_hex(&alloc_stage_canonical(&stages)),
        stages,
    })
}

/// Runs the fleet telemetry pass: a fixed-seed population over the
/// workload's first benchmark and all its nodes, reported as throughput
/// plus the canonical population digest.
fn fleet_section(config: &StudyConfig, chips: u64) -> Result<FleetSection, String> {
    let benchmark = config
        .benchmarks
        .first()
        .map(|p| p.name.clone())
        .ok_or_else(|| "fleet telemetry needs at least one benchmark".to_string())?;
    let engine = ramp_core::QueryEngine::calibrate(config)
        .map_err(|e| format!("fleet calibration failed: {e}"))?;
    let fleet_config = ramp_fleet::FleetConfig {
        benchmark: benchmark.clone(),
        nodes: config.nodes.clone(),
        chips,
        threads: Some(config.threads),
        ..ramp_fleet::FleetConfig::default()
    };
    let results = ramp_fleet::run_fleet(&engine, &fleet_config)
        .map_err(|e| format!("fleet telemetry run failed: {e}"))?;
    Ok(FleetSection {
        benchmark,
        chips_per_node: results.chips_per_node,
        seed: results.seed,
        chips_per_sec: results.chips_per_sec,
        population_digest: results.population_digest(),
    })
}

/// Runs the [`reference_workload`] through the harness.
///
/// # Errors
///
/// Propagates [`run_harness`] failures.
pub fn run_reference_workload(opts: &HarnessOptions) -> Result<Measurement, String> {
    run_harness(&reference_workload(), opts)
}

/// Stamps a measurement into a versioned snapshot.
#[must_use]
pub fn capture_snapshot(measurement: &Measurement, seq: u32) -> BenchSnapshot {
    BenchSnapshot {
        schema_version: BENCH_SCHEMA_VERSION,
        seq,
        created_unix_ms: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64),
        provenance: Provenance::capture(),
        workload: measurement.workload.clone(),
        total: measurement.total,
        stages: measurement.stages.clone(),
        cache: measurement.cache,
        executor: measurement.executor,
        histograms: measurement.histograms.clone(),
        numerics: measurement.numerics.clone(),
        fleet: measurement.fleet.clone(),
        alloc: measurement.alloc.clone(),
    }
}

fn numerics_section(config: &StudyConfig, results: &StudyResults) -> NumericsSection {
    let mut nodes = Vec::new();
    let mut mechanisms = Vec::new();
    for &node in &config.nodes {
        nodes.push(NodeFit {
            node: node.label().to_string(),
            avg_fit: results.overall_average_fit(node).value(),
            max_fit: results.max_app_fit(node).value(),
        });
        for mech in MechanismKind::ALL {
            let rs: Vec<_> = results
                .app_results()
                .iter()
                .filter(|r| r.node == node)
                .collect();
            let mean = rs
                .iter()
                .map(|r| r.fit.mechanism_total(mech).value())
                .sum::<f64>()
                / rs.len() as f64;
            mechanisms.push(MechanismFit {
                node: node.label().to_string(),
                mechanism: mech.label().to_string(),
                avg_fit: mean,
            });
        }
    }
    NumericsSection {
        config_digest: config_digest(config),
        results_digest: results_digest(results),
        nodes,
        mechanisms,
    }
}

/// Flattens a stage tree into `(path, count, seconds)` rows, depth-first.
fn flatten_stages(stages: &[StageNode]) -> Vec<(String, u64, f64)> {
    fn walk(node: &StageNode, out: &mut Vec<(String, u64, f64)>) {
        out.push((node.path.clone(), node.count, node.total_seconds));
        for child in &node.children {
            walk(child, out);
        }
    }
    let mut out = Vec::new();
    for s in stages {
        walk(s, &mut out);
    }
    out
}

/// Merges per-sample flattened stage rows into per-path statistics.
/// Paths are keyed exactly; a path absent from some samples contributes
/// zeros for those samples (it genuinely cost nothing there).
fn aggregate_stages(samples: &[Vec<(String, u64, f64)>], total_median: f64) -> Vec<StageStat> {
    // Path order of the first sample, then any new paths in later samples.
    let mut order: Vec<String> = Vec::new();
    for sample in samples {
        for (path, _, _) in sample {
            if !order.contains(path) {
                order.push(path.clone());
            }
        }
    }
    order
        .iter()
        .map(|path| {
            let mut seconds = Vec::with_capacity(samples.len());
            let mut count = 0u64;
            for sample in samples {
                match sample.iter().find(|(p, _, _)| p == path) {
                    Some((_, c, s)) => {
                        seconds.push(*s);
                        count = count.max(*c);
                    }
                    None => seconds.push(0.0),
                }
            }
            let timing = timing_stat(&seconds);
            StageStat {
                path: path.clone(),
                count,
                timing,
                share: if total_median > 0.0 {
                    (timing.median_seconds / total_median).min(1.0)
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Percentiles of each histogram's *delta* between two registry
/// snapshots: only observations recorded inside the measured window
/// count, even though the registry is process-global.
fn histogram_stats(before: &[MetricSnapshot], after: &[MetricSnapshot]) -> Vec<HistogramStat> {
    let mut out = Vec::new();
    for snap in after {
        let MetricValue::Histogram {
            bounds,
            counts,
            bucket_sums,
            count,
            sum,
        } = &snap.value
        else {
            continue;
        };
        let (mut d_counts, mut d_sums, mut d_count, mut d_sum) =
            (counts.clone(), bucket_sums.clone(), *count, *sum);
        if let Some(prev) = before.iter().find(|p| p.name == snap.name) {
            if let MetricValue::Histogram {
                counts: p_counts,
                bucket_sums: p_sums,
                count: p_count,
                sum: p_sum,
                ..
            } = &prev.value
            {
                for (d, p) in d_counts.iter_mut().zip(p_counts) {
                    *d = d.saturating_sub(*p);
                }
                for (d, p) in d_sums.iter_mut().zip(p_sums) {
                    *d -= p;
                }
                d_count = d_count.saturating_sub(*p_count);
                d_sum -= p_sum;
            }
        }
        if d_count == 0 {
            continue;
        }
        out.push(HistogramStat {
            name: snap.name.clone(),
            count: d_count,
            mean: d_sum / d_count as f64,
            p50: ramp_obs::bucket_percentile_with_sums(bounds, &d_counts, &d_sums, 50.0),
            p95: ramp_obs::bucket_percentile_with_sums(bounds, &d_counts, &d_sums, 95.0),
            p99: ramp_obs::bucket_percentile_with_sums(bounds, &d_counts, &d_sums, 99.0),
        });
    }
    out
}

fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

fn timing_stat(values: &[f64]) -> TimingStat {
    TimingStat {
        median_seconds: median(values),
        min_seconds: values.iter().copied().fold(f64::INFINITY, f64::min),
        max_seconds: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

// ---------------------------------------------------------------------------
// Gate
// ---------------------------------------------------------------------------

/// Noise model of the performance gate.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Multiplier on the baseline median: the core of each stage budget.
    pub tolerance: f64,
    /// Multiplier on the baseline spread (max − min) added to the
    /// budget — a run-to-run noise allowance measured by the baseline
    /// harness itself.
    pub spread_slack: f64,
    /// Stages whose baseline median is below this are reported but not
    /// gated: at that scale, timer jitter exceeds any real regression.
    pub min_stage_seconds: f64,
    /// Multiplier on the baseline peak-live-bytes the current peak is
    /// held to. Allocation *counts* are exact; the live-byte high-water
    /// mark can shift slightly with allocator growth policy, so it gets
    /// a budget instead of an exact match.
    pub peak_live_slack: f64,
}

impl GateConfig {
    /// Standard gate: generous enough for shared CI hardware, tight
    /// enough to catch a real 3× stage regression.
    #[must_use]
    pub fn standard() -> Self {
        GateConfig {
            tolerance: 3.0,
            spread_slack: 2.0,
            min_stage_seconds: 0.02,
            peak_live_slack: 1.5,
        }
    }

    /// Smoke gate for K=1 CI runs: wall-clock is almost advisory (10×
    /// budgets, 100 ms floor); the numerical exact-match checks — which
    /// are noise-free — carry the gate.
    #[must_use]
    pub fn smoke() -> Self {
        GateConfig {
            tolerance: 10.0,
            spread_slack: 4.0,
            min_stage_seconds: 0.10,
            peak_live_slack: 2.0,
        }
    }

    fn budget(&self, baseline: &TimingStat) -> f64 {
        baseline.median_seconds * self.tolerance + self.spread_slack * baseline.spread_seconds()
    }
}

/// Outcome of one stage comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageStatus {
    /// Within budget.
    Ok,
    /// Median exceeded the budget — gate failure.
    Over,
    /// Baseline median below the gating floor — informational only.
    Skipped,
    /// Stage in the baseline but absent from the current run — the
    /// pipeline shape changed; gate failure.
    Missing,
    /// Stage only in the current run — informational only.
    New,
}

impl StageStatus {
    /// Short lowercase label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StageStatus::Ok => "ok",
            StageStatus::Over => "OVER",
            StageStatus::Skipped => "skip",
            StageStatus::Missing => "MISSING",
            StageStatus::New => "new",
        }
    }

    /// Whether this status fails the gate.
    #[must_use]
    pub fn is_failure(self) -> bool {
        matches!(self, StageStatus::Over | StageStatus::Missing)
    }
}

/// One row of the per-stage delta report.
#[derive(Debug, Clone)]
pub struct StageDelta {
    /// Full span path.
    pub path: String,
    /// Baseline median, seconds (0 for [`StageStatus::New`]).
    pub baseline_seconds: f64,
    /// Current median, seconds (0 for [`StageStatus::Missing`]).
    pub current_seconds: f64,
    /// Budget the current median was held to (0 when not gated).
    pub budget_seconds: f64,
    /// Outcome.
    pub status: StageStatus,
}

impl StageDelta {
    /// current ÷ baseline (∞ when the baseline is 0).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.baseline_seconds > 0.0 {
            self.current_seconds / self.baseline_seconds
        } else {
            f64::INFINITY
        }
    }
}

/// Full outcome of a gate comparison.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Baseline snapshot sequence number.
    pub baseline_seq: u32,
    /// Whether the two runs measured the same workload (config digests
    /// match). When false every other field is advisory.
    pub config_match: bool,
    /// Whether the numerical outputs matched exactly.
    pub digest_match: bool,
    /// Whether the fleet population digests matched. `true` when the
    /// comparison does not apply: either side lacks a fleet section, or
    /// the fleet parameters (benchmark, chips, seed) differ.
    pub fleet_digest_match: bool,
    /// Human-readable fleet drift description (empty when
    /// `fleet_digest_match`).
    pub fleet_diff: Option<String>,
    /// Whether the per-stage allocation-count digests matched. `true`
    /// when the comparison does not apply (either side lacks an alloc
    /// section or the pass thread counts differ).
    pub alloc_digest_match: bool,
    /// Whether the current peak-live-bytes sat within the baseline
    /// budget (`peak × peak_live_slack`). `true` when not applicable.
    pub alloc_peak_ok: bool,
    /// Human-readable allocation drift localization (empty when both
    /// alloc checks passed).
    pub alloc_diffs: Vec<String>,
    /// Human-readable localization of numerical drift (empty when
    /// `digest_match`).
    pub numeric_diffs: Vec<String>,
    /// Whole-study wall-clock row.
    pub total: StageDelta,
    /// Per-stage rows, baseline order, then new stages.
    pub stages: Vec<StageDelta>,
}

impl GateReport {
    /// Whether the gate passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.config_match
            && self.digest_match
            && self.fleet_digest_match
            && self.alloc_digest_match
            && self.alloc_peak_ok
            && !self.total.status.is_failure()
            && self.stages.iter().all(|s| !s.status.is_failure())
    }
}

/// Compares a current measurement against a baseline snapshot.
#[must_use]
pub fn compare(baseline: &BenchSnapshot, current: &Measurement, gate: &GateConfig) -> GateReport {
    let config_match = baseline.numerics.config_digest == current.numerics.config_digest;
    let digest_match =
        config_match && baseline.numerics.results_digest == current.numerics.results_digest;

    let mut numeric_diffs = Vec::new();
    if config_match && !digest_match {
        numeric_diffs.push(format!(
            "results digest {} -> {}",
            baseline.numerics.results_digest, current.numerics.results_digest
        ));
        for b in &baseline.numerics.nodes {
            if let Some(c) = current.numerics.nodes.iter().find(|n| n.node == b.node) {
                if c.avg_fit != b.avg_fit || c.max_fit != b.max_fit {
                    numeric_diffs.push(format!(
                        "{}: avg FIT {:.6} -> {:.6}, max FIT {:.6} -> {:.6}",
                        b.node, b.avg_fit, c.avg_fit, b.max_fit, c.max_fit
                    ));
                }
            }
        }
        for b in &baseline.numerics.mechanisms {
            if let Some(c) = current
                .numerics
                .mechanisms
                .iter()
                .find(|m| m.node == b.node && m.mechanism == b.mechanism)
            {
                if c.avg_fit != b.avg_fit {
                    numeric_diffs.push(format!(
                        "{} {}: avg FIT {:.6} -> {:.6}",
                        b.node, b.mechanism, b.avg_fit, c.avg_fit
                    ));
                }
            }
        }
    }

    // The fleet digest is gated exactly, but only when both sides ran the
    // same population (section present, same benchmark/chips/seed) —
    // pre-fleet baselines and smoke-vs-full fleet sizes compare as "not
    // applicable", never as failures.
    let (fleet_digest_match, fleet_diff) = match (&baseline.fleet, &current.fleet) {
        (Some(b), Some(c))
            if b.benchmark == c.benchmark
                && b.chips_per_node == c.chips_per_node
                && b.seed == c.seed =>
        {
            if b.population_digest == c.population_digest {
                (true, None)
            } else {
                (
                    false,
                    Some(format!(
                        "fleet population digest {} -> {} ({} chips/node, seed {})",
                        b.population_digest, c.population_digest, c.chips_per_node, c.seed
                    )),
                )
            }
        }
        _ => (true, None),
    };

    // The alloc digest is exact (single-threaded counts are
    // deterministic); the peak-live high-water mark gets a budget. Both
    // apply only when the two sides ran comparable passes.
    let mut alloc_diffs = Vec::new();
    let (alloc_digest_match, alloc_peak_ok) = match (&baseline.alloc, &current.alloc) {
        (Some(b), Some(c)) if b.threads == c.threads && config_match => {
            let digest_ok = b.stage_digest == c.stage_digest;
            if !digest_ok {
                alloc_diffs.push(format!(
                    "alloc stage digest {} -> {} ({} -> {} total allocations)",
                    b.stage_digest, c.stage_digest, b.allocs, c.allocs
                ));
                for bs in &b.stages {
                    match c.stages.iter().find(|cs| cs.path == bs.path) {
                        Some(cs) if cs.allocs != bs.allocs => {
                            alloc_diffs.push(format!(
                                "  {}: {} -> {} allocs",
                                bs.path, bs.allocs, cs.allocs
                            ));
                        }
                        Some(_) => {}
                        None => alloc_diffs.push(format!("  {}: stage vanished", bs.path)),
                    }
                }
                for cs in &c.stages {
                    if !b.stages.iter().any(|bs| bs.path == cs.path) {
                        alloc_diffs.push(format!(
                            "  {}: new stage ({} allocs)",
                            cs.path, cs.allocs
                        ));
                    }
                }
            }
            let peak_budget = (b.peak_live_bytes as f64 * gate.peak_live_slack) as u64;
            let peak_ok = c.peak_live_bytes <= peak_budget;
            if !peak_ok {
                alloc_diffs.push(format!(
                    "peak live bytes {} exceeds budget {} ({} baseline x {:.1})",
                    c.peak_live_bytes, peak_budget, b.peak_live_bytes, gate.peak_live_slack
                ));
            }
            (digest_ok, peak_ok)
        }
        _ => (true, true),
    };

    let total_budget = gate.budget(&baseline.total);
    let total = StageDelta {
        path: "(total)".to_string(),
        baseline_seconds: baseline.total.median_seconds,
        current_seconds: current.total.median_seconds,
        budget_seconds: total_budget,
        status: if current.total.median_seconds > total_budget {
            StageStatus::Over
        } else {
            StageStatus::Ok
        },
    };

    let mut stages = Vec::new();
    for b in &baseline.stages {
        let cur = current.stages.iter().find(|c| c.path == b.path);
        let delta = match cur {
            Some(c) if b.timing.median_seconds < gate.min_stage_seconds => StageDelta {
                path: b.path.clone(),
                baseline_seconds: b.timing.median_seconds,
                current_seconds: c.timing.median_seconds,
                budget_seconds: 0.0,
                status: StageStatus::Skipped,
            },
            Some(c) => {
                let budget = gate.budget(&b.timing);
                StageDelta {
                    path: b.path.clone(),
                    baseline_seconds: b.timing.median_seconds,
                    current_seconds: c.timing.median_seconds,
                    budget_seconds: budget,
                    status: if c.timing.median_seconds > budget {
                        StageStatus::Over
                    } else {
                        StageStatus::Ok
                    },
                }
            }
            None if b.timing.median_seconds < gate.min_stage_seconds => StageDelta {
                path: b.path.clone(),
                baseline_seconds: b.timing.median_seconds,
                current_seconds: 0.0,
                budget_seconds: 0.0,
                status: StageStatus::Skipped,
            },
            None => StageDelta {
                path: b.path.clone(),
                baseline_seconds: b.timing.median_seconds,
                current_seconds: 0.0,
                budget_seconds: 0.0,
                status: StageStatus::Missing,
            },
        };
        stages.push(delta);
    }
    for c in &current.stages {
        if !baseline.stages.iter().any(|b| b.path == c.path) {
            stages.push(StageDelta {
                path: c.path.clone(),
                baseline_seconds: 0.0,
                current_seconds: c.timing.median_seconds,
                budget_seconds: 0.0,
                status: StageStatus::New,
            });
        }
    }

    GateReport {
        baseline_seq: baseline.seq,
        config_match,
        digest_match,
        fleet_digest_match,
        fleet_diff,
        alloc_digest_match,
        alloc_peak_ok,
        alloc_diffs,
        numeric_diffs,
        total,
        stages,
    }
}

/// Renders a gate report for humans (what CI prints on failure).
#[must_use]
pub fn render_report(report: &GateReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "benchgate vs BENCH_{:04}: {}",
        report.baseline_seq,
        if report.passed() { "PASS" } else { "FAIL" }
    );

    if !report.config_match {
        let _ = writeln!(
            out,
            "  workload mismatch: the baseline was captured under a different study \
             configuration; wall-clock and numeric deltas below are meaningless. \
             Re-baseline with `benchgate --update`."
        );
    }
    if report.config_match {
        if report.digest_match {
            let _ = writeln!(out, "  numerics: exact match (results digest unchanged)");
        } else {
            let _ = writeln!(out, "  numerics: DRIFT DETECTED");
            for d in &report.numeric_diffs {
                let _ = writeln!(out, "    {d}");
            }
        }
        if report.fleet_digest_match {
            let _ = writeln!(out, "  fleet: population digest ok");
        } else {
            let _ = writeln!(out, "  fleet: POPULATION DRIFT");
            if let Some(d) = &report.fleet_diff {
                let _ = writeln!(out, "    {d}");
            }
        }
        if report.alloc_digest_match && report.alloc_peak_ok {
            let _ = writeln!(out, "  alloc: stage digest and peak budget ok");
        } else {
            let _ = writeln!(out, "  alloc: ALLOCATION DRIFT");
            for d in &report.alloc_diffs {
                let _ = writeln!(out, "    {d}");
            }
        }
    }

    let _ = writeln!(
        out,
        "  {:<44} {:>10} {:>10} {:>10}  status",
        "stage", "base(s)", "cur(s)", "budget(s)"
    );
    let render_row = |out: &mut String, d: &StageDelta| {
        let budget = if d.budget_seconds > 0.0 {
            format!("{:.3}", d.budget_seconds)
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            out,
            "  {:<44} {:>10.3} {:>10.3} {:>10}  {}",
            d.path, d.baseline_seconds, d.current_seconds, budget,
            d.status.label()
        );
    };
    render_row(&mut out, &report.total);
    for d in &report.stages {
        render_row(&mut out, d);
    }
    out
}

// ---------------------------------------------------------------------------
// Snapshot files
// ---------------------------------------------------------------------------

/// File name of snapshot `seq` (`BENCH_0001.json`).
#[must_use]
pub fn snapshot_file_name(seq: u32) -> String {
    format!("BENCH_{seq:04}.json")
}

/// All `BENCH_<seq>.json` files in `dir`, sorted by sequence number.
#[must_use]
pub fn find_snapshots(dir: &Path) -> Vec<(u32, PathBuf)> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|digits| digits.parse::<u32>().ok())
        {
            found.push((seq, entry.path()));
        }
    }
    found.sort_by_key(|(seq, _)| *seq);
    found
}

/// The highest-sequence snapshot in `dir`, if any.
#[must_use]
pub fn latest_snapshot(dir: &Path) -> Option<(u32, PathBuf)> {
    find_snapshots(dir).into_iter().next_back()
}

/// The sequence number the next snapshot in `dir` should use.
#[must_use]
pub fn next_seq(dir: &Path) -> u32 {
    latest_snapshot(dir).map_or(1, |(seq, _)| seq + 1)
}

/// Loads and validates a snapshot file.
///
/// # Errors
///
/// Returns a message when the file is unreadable, not valid snapshot
/// JSON, or from a different schema version.
pub fn load_snapshot(path: &Path) -> Result<BenchSnapshot, String> {
    let raw = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let snap: BenchSnapshot = serde_json::from_str(&raw)
        .map_err(|e| format!("{} is not a BENCH snapshot: {e}", path.display()))?;
    if snap.schema_version != BENCH_SCHEMA_VERSION {
        return Err(format!(
            "{}: schema version {} (this binary understands {})",
            path.display(),
            snap.schema_version,
            BENCH_SCHEMA_VERSION
        ));
    }
    Ok(snap)
}

/// Writes a snapshot as pretty-stable JSON.
///
/// # Errors
///
/// Returns a message when serialization or the write fails.
pub fn save_snapshot(snapshot: &BenchSnapshot, path: &Path) -> Result<(), String> {
    let json = serde_json::to_string(snapshot)
        .map_err(|e| format!("snapshot does not serialize: {e}"))?;
    std::fs::write(path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(median: f64, min: f64, max: f64) -> TimingStat {
        TimingStat {
            median_seconds: median,
            min_seconds: min,
            max_seconds: max,
        }
    }

    fn snapshot_fixture() -> BenchSnapshot {
        BenchSnapshot {
            schema_version: BENCH_SCHEMA_VERSION,
            seq: 1,
            created_unix_ms: 0,
            provenance: Provenance::capture(),
            workload: WorkloadSection {
                label: REFERENCE_LABEL.to_string(),
                benchmarks: vec!["gzip".into()],
                nodes: vec!["180nm".into()],
                samples: 3,
                threads: 1,
            },
            total: stat(1.0, 0.9, 1.1),
            stages: vec![
                StageStat {
                    path: "study".into(),
                    count: 1,
                    timing: stat(1.0, 0.9, 1.1),
                    share: 1.0,
                },
                StageStat {
                    path: "study/tiny".into(),
                    count: 1,
                    timing: stat(0.001, 0.001, 0.002),
                    share: 0.001,
                },
            ],
            cache: CacheSection {
                hits: 0,
                misses: 20,
                hit_rate: 0.0,
            },
            executor: ExecutorSection {
                threads: 1,
                speedup: 1.0,
                utilization: 1.0,
            },
            histograms: vec![],
            numerics: NumericsSection {
                config_digest: "c".into(),
                results_digest: "r".into(),
                nodes: vec![NodeFit {
                    node: "180nm".into(),
                    avg_fit: 4000.0,
                    max_fit: 4400.0,
                }],
                mechanisms: vec![MechanismFit {
                    node: "180nm".into(),
                    mechanism: "EM".into(),
                    avg_fit: 1000.0,
                }],
            },
            fleet: Some(FleetSection {
                benchmark: "gzip".into(),
                chips_per_node: 20_000,
                seed: 42,
                chips_per_sec: 1.0e5,
                population_digest: "f".into(),
            }),
            alloc: Some(alloc_fixture()),
        }
    }

    fn alloc_fixture() -> AllocSection {
        let stages = vec![
            AllocStageStat {
                path: "study".into(),
                allocs: 100,
                bytes: 10_000,
            },
            AllocStageStat {
                path: "study/run".into(),
                allocs: 80,
                bytes: 8_000,
            },
        ];
        AllocSection {
            threads: 1,
            allocs: 200,
            alloc_bytes: 20_000,
            peak_live_bytes: 1_000_000,
            stage_digest: fnv1a_hex(&alloc_stage_canonical(&stages)),
            stages,
        }
    }

    fn measurement_like(snapshot: &BenchSnapshot) -> Measurement {
        Measurement {
            workload: snapshot.workload.clone(),
            total: snapshot.total,
            stages: snapshot.stages.clone(),
            cache: snapshot.cache,
            executor: snapshot.executor,
            histograms: snapshot.histograms.clone(),
            numerics: snapshot.numerics.clone(),
            fleet: snapshot.fleet.clone(),
            alloc: snapshot.alloc.clone(),
            results_json: String::new(),
            manifests: vec![],
        }
    }

    #[test]
    fn identical_runs_pass_the_gate() {
        let base = snapshot_fixture();
        let report = compare(&base, &measurement_like(&base), &GateConfig::standard());
        assert!(report.passed(), "{}", render_report(&report));
        assert!(report.digest_match);
    }

    #[test]
    fn stage_over_budget_fails_with_delta_row() {
        let base = snapshot_fixture();
        let mut cur = measurement_like(&base);
        cur.stages[0].timing = stat(10.0, 10.0, 10.0); // 10x the baseline
        let report = compare(&base, &cur, &GateConfig::standard());
        assert!(!report.passed());
        let row = report.stages.iter().find(|s| s.path == "study").unwrap();
        assert_eq!(row.status, StageStatus::Over);
        assert!(render_report(&report).contains("OVER"));
    }

    #[test]
    fn tiny_stages_are_never_gated() {
        let base = snapshot_fixture();
        let mut cur = measurement_like(&base);
        // 1000x regression on a 1 ms stage: below the floor, not gated.
        cur.stages[1].timing = stat(1.0, 1.0, 1.0);
        cur.stages[1].path = "study/tiny".into();
        let report = compare(&base, &cur, &GateConfig::standard());
        let row = report.stages.iter().find(|s| s.path == "study/tiny").unwrap();
        assert_eq!(row.status, StageStatus::Skipped);
        assert!(report.passed());
    }

    #[test]
    fn digest_mismatch_fails_regardless_of_timing() {
        let base = snapshot_fixture();
        let mut cur = measurement_like(&base);
        cur.numerics.results_digest = "drifted".into();
        cur.numerics.nodes[0].avg_fit += 1e-9;
        let report = compare(&base, &cur, &GateConfig::smoke());
        assert!(!report.passed());
        assert!(!report.digest_match);
        assert!(!report.numeric_diffs.is_empty());
        assert!(render_report(&report).contains("DRIFT"));
    }

    #[test]
    fn config_mismatch_asks_for_rebaseline() {
        let base = snapshot_fixture();
        let mut cur = measurement_like(&base);
        cur.numerics.config_digest = "other".into();
        let report = compare(&base, &cur, &GateConfig::standard());
        assert!(!report.passed());
        assert!(!report.config_match);
        assert!(render_report(&report).contains("Re-baseline"));
    }

    #[test]
    fn missing_baseline_stage_fails() {
        let base = snapshot_fixture();
        let mut cur = measurement_like(&base);
        cur.stages.remove(0);
        let report = compare(&base, &cur, &GateConfig::standard());
        let row = report.stages.iter().find(|s| s.path == "study").unwrap();
        assert_eq!(row.status, StageStatus::Missing);
        assert!(!report.passed());
    }

    #[test]
    fn new_stages_are_informational() {
        let base = snapshot_fixture();
        let mut cur = measurement_like(&base);
        cur.stages.push(StageStat {
            path: "study/extra".into(),
            count: 1,
            timing: stat(5.0, 5.0, 5.0),
            share: 0.5,
        });
        let report = compare(&base, &cur, &GateConfig::standard());
        let row = report.stages.iter().find(|s| s.path == "study/extra").unwrap();
        assert_eq!(row.status, StageStatus::New);
        assert!(report.passed());
    }

    #[test]
    fn alloc_count_drift_fails_the_gate() {
        let base = snapshot_fixture();
        let mut cur = measurement_like(&base);
        let alloc = cur.alloc.as_mut().unwrap();
        alloc.stages[1].allocs += 1;
        alloc.stage_digest = fnv1a_hex(&alloc_stage_canonical(&alloc.stages));
        let report = compare(&base, &cur, &GateConfig::smoke());
        assert!(!report.passed());
        assert!(!report.alloc_digest_match);
        assert!(report.alloc_peak_ok);
        let rendered = render_report(&report);
        assert!(rendered.contains("ALLOCATION DRIFT"), "{rendered}");
        assert!(rendered.contains("study/run: 80 -> 81 allocs"), "{rendered}");
    }

    #[test]
    fn peak_live_bytes_over_budget_fails_the_gate() {
        let base = snapshot_fixture();
        let mut cur = measurement_like(&base);
        // 1.5x slack on a 1 MB baseline: 2 MB is over budget.
        cur.alloc.as_mut().unwrap().peak_live_bytes = 2_000_000;
        let report = compare(&base, &cur, &GateConfig::standard());
        assert!(!report.passed());
        assert!(report.alloc_digest_match);
        assert!(!report.alloc_peak_ok);
        assert!(render_report(&report).contains("peak live bytes"));
    }

    #[test]
    fn missing_alloc_section_compares_as_not_applicable() {
        let mut base = snapshot_fixture();
        base.alloc = None;
        let cur = measurement_like(&snapshot_fixture());
        let report = compare(&base, &cur, &GateConfig::standard());
        assert!(report.alloc_digest_match);
        assert!(report.alloc_peak_ok);
        assert!(report.passed(), "{}", render_report(&report));
    }

    #[test]
    fn alloc_canonical_rendering_is_stable() {
        let stages = vec![
            AllocStageStat {
                path: "a".into(),
                allocs: 1,
                bytes: 10,
            },
            AllocStageStat {
                path: "b".into(),
                allocs: 2,
                bytes: 99,
            },
        ];
        // Counts only: byte totals must not move the digest.
        assert_eq!(alloc_stage_canonical(&stages), "a=1\nb=2\n");
        let mut fatter = stages.clone();
        fatter[0].bytes = 1_000_000;
        assert_eq!(
            fnv1a_hex(&alloc_stage_canonical(&stages)),
            fnv1a_hex(&alloc_stage_canonical(&fatter))
        );
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let snap = snapshot_fixture();
        let json = serde_json::to_string(&snap).unwrap();
        let back: BenchSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_files_are_discovered_in_sequence_order() {
        let dir = std::env::temp_dir().join(format!("ramp-bench-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut snap = snapshot_fixture();
        for seq in [3u32, 1, 2] {
            snap.seq = seq;
            save_snapshot(&snap, &dir.join(snapshot_file_name(seq))).unwrap();
        }
        std::fs::write(dir.join("BENCH_bogus.json"), "{}").unwrap();
        let found = find_snapshots(&dir);
        assert_eq!(
            found.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(latest_snapshot(&dir).unwrap().0, 3);
        assert_eq!(next_seq(&dir), 4);
        let loaded = load_snapshot(&found[0].1).unwrap();
        assert_eq!(loaded.seq, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let dir = std::env::temp_dir().join(format!("ramp-bench-schema-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut snap = snapshot_fixture();
        snap.schema_version = BENCH_SCHEMA_VERSION + 1;
        let path = dir.join(snapshot_file_name(9));
        save_snapshot(&snap, &path).unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[2.0]), 2.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn stage_aggregation_takes_medians_per_path() {
        let samples = vec![
            vec![("study".to_string(), 1, 1.0), ("study/run".to_string(), 4, 0.8)],
            vec![("study".to_string(), 1, 3.0), ("study/run".to_string(), 4, 2.4)],
            vec![("study".to_string(), 1, 2.0)],
        ];
        let stats = aggregate_stages(&samples, 2.0);
        let study = stats.iter().find(|s| s.path == "study").unwrap();
        assert_eq!(study.timing.median_seconds, 2.0);
        assert_eq!(study.timing.min_seconds, 1.0);
        assert_eq!(study.timing.max_seconds, 3.0);
        assert_eq!(study.share, 1.0);
        // Path absent from sample 3 contributes a zero.
        let run = stats.iter().find(|s| s.path == "study/run").unwrap();
        assert_eq!(run.timing.min_seconds, 0.0);
        assert_eq!(run.timing.median_seconds, 0.8);
        assert_eq!(run.count, 4);
    }
}
