//! Criterion benchmarks of the RAMP failure models: single-mechanism rate
//! evaluation, the full per-interval accumulation step, and report
//! generation — the inner loop of the reliability engine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ramp_core::mechanisms::{standard_models, PerMechanism};
use ramp_core::{NodeId, OperatingPoint, Qualification, RateAccumulator, TechNode};
use ramp_microarch::PerStructure;
use ramp_units::{ActivityFactor, Kelvin, Volts};

fn ops() -> PerStructure<OperatingPoint> {
    PerStructure::from_fn(|s| {
        OperatingPoint::new(
            Kelvin::new(345.0 + 3.0 * s.index() as f64).unwrap(),
            Volts::new(1.3).unwrap(),
            ActivityFactor::new(0.1 + 0.1 * s.index() as f64).unwrap(),
        )
    })
}

fn bench_single_rates(c: &mut Criterion) {
    let models = standard_models();
    let node = TechNode::reference();
    let point = ops()[ramp_microarch::Structure::Lsu];
    let mut group = c.benchmark_group("mechanism_rate");
    for model in &models {
        group.bench_function(model.kind().label(), |b| {
            b.iter(|| black_box(model.relative_rate(black_box(&point), &node)));
        });
    }
    group.finish();
}

fn bench_observe_interval(c: &mut Criterion) {
    let models = standard_models();
    let node = TechNode::get(NodeId::N65HighV);
    let point = ops();
    c.bench_function("accumulator_observe_100_intervals", |b| {
        b.iter_batched(
            || RateAccumulator::new(&models, node),
            |mut acc| {
                for _ in 0..100 {
                    acc.observe(black_box(&point), 1.0);
                }
                acc.finish()
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_fit_report(c: &mut Criterion) {
    let models = standard_models();
    let node = TechNode::reference();
    let mut acc = RateAccumulator::new(&models, node);
    acc.observe(&ops(), 1.0);
    let rates = acc.finish();
    let qual = Qualification::from_constants(PerMechanism::from_fn(|_| 1.0)).unwrap();
    c.bench_function("fit_report_and_sofr_total", |b| {
        b.iter(|| {
            let report = qual.fit_report(black_box(&rates));
            black_box(report.total())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_single_rates, bench_observe_interval, bench_fit_report
}
criterion_main!(benches);
