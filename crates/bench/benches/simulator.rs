//! Criterion benchmarks of the workload substrate: trace generation and
//! timing-simulation throughput for contrasting benchmark characters.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ramp_microarch::{simulate, MachineConfig, SimulationLength};
use ramp_trace::{spec, TraceGenerator};

const INSTRUCTIONS: u64 = 100_000;

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.throughput(Throughput::Elements(INSTRUCTIONS));
    for name in ["gzip", "ammp"] {
        let profile = spec::profile(name).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                let n = TraceGenerator::new(&profile)
                    .take(INSTRUCTIONS as usize)
                    .count();
                black_box(n)
            });
        });
    }
    group.finish();
}

fn bench_timing_simulation(c: &mut Criterion) {
    let cfg = MachineConfig::power4_180nm();
    let mut group = c.benchmark_group("timing_simulation");
    group.throughput(Throughput::Elements(INSTRUCTIONS));
    group.sample_size(10);
    // gzip: cache-friendly, high IPC. ammp: miss-heavy FP. gcc: big code
    // footprint, mispredict-heavy. Together they cover the simulator's
    // fast and slow paths.
    for name in ["gzip", "ammp", "gcc"] {
        let profile = spec::profile(name).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = simulate(
                    &cfg,
                    TraceGenerator::new(&profile),
                    SimulationLength::Instructions(INSTRUCTIONS),
                    1_100,
                );
                black_box(out.stats.ipc())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_trace_generation, bench_timing_simulation
}
criterion_main!(benches);
