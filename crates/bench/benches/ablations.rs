//! Criterion benchmarks of configuration alternatives whose *results* are
//! compared by the `ablations` binary: what do the design choices cost in
//! compute? (Thermal sub-stepping granularity, activity-interval length,
//! and worst-case synthesis modes.)

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ramp_core::mechanisms::standard_models;
use ramp_core::{run_app_on_node, PipelineConfig, TechNode};
use ramp_microarch::{simulate, MachineConfig, SimulationLength};
use ramp_trace::{spec, TraceGenerator};

fn bench_time_compression_cost(c: &mut Criterion) {
    let models = standard_models();
    let profile = spec::profile("gzip").unwrap();
    let mut group = c.benchmark_group("pipeline_time_compression");
    group.sample_size(10);
    for compression in [1.0, 8.0, 32.0] {
        let cfg = PipelineConfig {
            time_compression: compression,
            ..PipelineConfig::quick()
        };
        group.bench_function(format!("x{compression}"), |b| {
            b.iter(|| {
                black_box(
                    run_app_on_node(&profile, &TechNode::reference(), &cfg, &models, None)
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_interval_granularity_cost(c: &mut Criterion) {
    let cfg = MachineConfig::power4_180nm();
    let profile = spec::profile("mesa").unwrap();
    let mut group = c.benchmark_group("activity_interval_cycles");
    group.sample_size(10);
    for interval in [275u64, 1_100, 11_000] {
        group.bench_function(format!("{interval}cyc"), |b| {
            b.iter(|| {
                black_box(simulate(
                    &cfg,
                    TraceGenerator::new(&profile),
                    SimulationLength::Instructions(100_000),
                    interval,
                ))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_time_compression_cost, bench_interval_granularity_cost
}
criterion_main!(benches);
