//! Criterion benchmarks of the thermal substrate: steady-state solves and
//! transient stepping at both ends of the die-size range.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ramp_microarch::PerStructure;
use ramp_thermal::{Floorplan, RcNetwork, ThermalParams, ThermalSimulator};
use ramp_units::{Seconds, SquareMillimeters, Watts};

fn powers() -> PerStructure<Watts> {
    PerStructure::from_fn(|s| Watts::new(2.0 + 0.5 * s.index() as f64).unwrap())
}

fn bench_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal_steady_state");
    for (label, area) in [("180nm_81mm2", 81.0), ("65nm_12.96mm2", 81.0 * 0.16)] {
        let fp = Floorplan::power4(SquareMillimeters::new(area).unwrap());
        let net = RcNetwork::build(&fp, ThermalParams::reference()).unwrap();
        let p = powers();
        group.bench_function(label, |b| {
            b.iter(|| black_box(net.steady_state(black_box(&p)).unwrap()));
        });
    }
    group.finish();
}

fn bench_transient_step(c: &mut Criterion) {
    let sim = ThermalSimulator::new(
        SquareMillimeters::new(81.0).unwrap(),
        ThermalParams::reference(),
    )
    .unwrap();
    let p = powers();
    let state = sim.initial_state(&p).unwrap();
    c.bench_function("thermal_transient_1us_step", |b| {
        b.iter(|| black_box(sim.step(black_box(&state), &p, Seconds::MICROSECOND)));
    });
}

fn bench_two_pass_init(c: &mut Criterion) {
    let p = powers();
    c.bench_function("thermal_two_pass_initialisation", |b| {
        b.iter(|| {
            let sim = ThermalSimulator::new(
                SquareMillimeters::new(81.0).unwrap(),
                ThermalParams::reference(),
            )
            .unwrap();
            black_box(sim.initial_state(&p).unwrap())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_steady_state, bench_transient_step, bench_two_pass_init
}
criterion_main!(benches);
