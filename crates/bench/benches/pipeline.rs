//! Criterion benchmark of the full evaluation pipeline — the unit of work
//! behind every cell of the paper's figures — at reference and scaled
//! nodes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ramp_core::mechanisms::standard_models;
use ramp_core::{run_app_on_node, NodeId, PipelineConfig, TechNode};
use ramp_trace::spec;
use ramp_units::Watts;

fn bench_full_pipeline(c: &mut Criterion) {
    let models = standard_models();
    let cfg = PipelineConfig::quick();
    let profile = spec::profile("gzip").unwrap();
    let mut group = c.benchmark_group("pipeline_quick_run");
    group.sample_size(10);
    group.bench_function("180nm", |b| {
        b.iter(|| {
            black_box(
                run_app_on_node(&profile, &TechNode::reference(), &cfg, &models, None).unwrap(),
            )
        });
    });
    group.bench_function("65nm_1.0V", |b| {
        b.iter(|| {
            black_box(
                run_app_on_node(
                    &profile,
                    &TechNode::get(NodeId::N65HighV),
                    &cfg,
                    &models,
                    Some(Watts::new(29.0).unwrap()),
                )
                .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_full_pipeline
}
criterion_main!(benches);
