//! Telemetry-harness contract tests.
//!
//! The load-bearing one: the serialized `StudyResults` produced *inside*
//! the telemetry harness (spans, metrics, manifests, K samples) are
//! byte-identical to a bare `run_study` with no telemetry collection —
//! which is what makes exact digest comparison a valid drift detector.

use ramp_bench::telemetry::{
    capture_snapshot, compare, load_snapshot, reference_workload, run_harness, save_snapshot,
    snapshot_file_name, GateConfig, HarnessOptions, BENCH_SCHEMA_VERSION, REFERENCE_BENCHMARKS,
};
use ramp_core::{fnv1a_hex, run_study, StudyConfig};

/// A reduced workload so the harness runs twice in a debug-build test.
fn small_config() -> StudyConfig {
    StudyConfig::quick()
        .with_benchmarks(&["gzip", "ammp"])
        .expect("known benchmarks")
}

#[test]
fn results_bytes_identical_with_telemetry_on_and_off() {
    // Telemetry off: a bare study, no harness, no spans reset, no
    // manifests. This is the reference byte stream.
    let config = small_config();
    let bare = run_study(&config).expect("bare study runs");
    let expected = serde_json::to_string(&bare).expect("results serialize");

    // Telemetry on: the full harness with two measured samples (which
    // also makes the harness verify sample-to-sample identity itself).
    let opts = HarnessOptions {
        samples: 2,
        warmup: false,
        fleet_chips: 0,
        alloc_pass: false,
    };
    let measurement = run_harness(&config, &opts).expect("harness runs");

    assert_eq!(
        measurement.results_json, expected,
        "telemetry collection changed the serialized StudyResults bytes"
    );
    // The digest stored in the snapshot is the digest of those bytes.
    assert_eq!(
        measurement.numerics.results_digest,
        fnv1a_hex(&expected),
        "numerics.results_digest is not the digest of the results bytes"
    );
}

#[test]
fn harness_produces_complete_telemetry() {
    let opts = HarnessOptions {
        samples: 2,
        warmup: false,
        fleet_chips: 2_000,
        alloc_pass: true,
    };
    let m = run_harness(&small_config(), &opts).expect("harness runs");

    // Per-sample manifests carry the benchmark section.
    assert_eq!(m.manifests.len(), 2);
    for (i, manifest) in m.manifests.iter().enumerate() {
        let bench = manifest.benchmark.as_ref().expect("benchmark section");
        assert_eq!(bench.sample as usize, i + 1);
        assert_eq!(bench.samples, 2);
    }

    // The stage table covers the study pipeline.
    for path in ["study", "study/reference/worker/run/timing"] {
        assert!(
            m.stages.iter().any(|s| s.path == path),
            "stage {path} missing from {:?}",
            m.stages.iter().map(|s| s.path.clone()).collect::<Vec<_>>()
        );
    }
    // Stage timings are internally consistent.
    for s in &m.stages {
        assert!(s.timing.min_seconds <= s.timing.median_seconds);
        assert!(s.timing.median_seconds <= s.timing.max_seconds);
        assert!((0.0..=1.0).contains(&s.share), "share {}", s.share);
    }
    assert!(m.total.median_seconds > 0.0);

    // The harness clears the timing cache before each sample, so the
    // measured cache traffic reflects a cold start: every (profile, node)
    // pair misses once and repeats hit.
    assert!(m.cache.misses > 0, "cold-start sample recorded no misses");
    assert!((0.0..=1.0).contains(&m.cache.hit_rate));

    // Histograms observed during the window surface with percentiles.
    for h in &m.histograms {
        assert!(h.count > 0);
        assert!(h.p50 <= h.p95 && h.p95 <= h.p99, "{h:?}");
    }

    // Numerics cover every (node, mechanism) cell.
    assert_eq!(m.numerics.nodes.len(), small_config().nodes.len());
    assert_eq!(
        m.numerics.mechanisms.len(),
        small_config().nodes.len() * 4
    );

    // The fleet telemetry pass ran and pinned a population digest.
    let fleet = m.fleet.as_ref().expect("fleet section");
    assert_eq!(fleet.chips_per_node, 2_000);
    assert!(fleet.chips_per_sec > 0.0);
    assert_eq!(fleet.population_digest.len(), 16);

    // The alloc pass ran single-threaded, attributed real allocations to
    // the pipeline stages, and pinned an exact stage digest.
    let alloc = m.alloc.as_ref().expect("alloc section");
    assert_eq!(alloc.threads, 1);
    assert!(alloc.allocs > 0, "tracking allocator saw no allocations");
    assert!(alloc.alloc_bytes > 0);
    assert!(alloc.peak_live_bytes > 0);
    assert_eq!(alloc.stage_digest.len(), 16);
    let study = alloc
        .stages
        .iter()
        .find(|s| s.path == "study")
        .expect("study stage in alloc table");
    assert!(study.allocs > 0, "study span attributed no allocations");
}

#[test]
fn snapshot_survives_disk_roundtrip_and_gates_against_itself() {
    let opts = HarnessOptions::smoke();
    let m = run_harness(&small_config(), &opts).expect("harness runs");
    let snapshot = capture_snapshot(&m, 7);
    assert_eq!(snapshot.schema_version, BENCH_SCHEMA_VERSION);
    assert_eq!(snapshot.seq, 7);

    let dir = std::env::temp_dir().join(format!("ramp-telemetry-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(snapshot_file_name(7));
    save_snapshot(&snapshot, &path).unwrap();
    let loaded = load_snapshot(&path).unwrap();
    assert_eq!(loaded, snapshot);
    std::fs::remove_dir_all(&dir).ok();

    // A measurement gated against its own snapshot always passes: zero
    // timing delta and exact digest equality.
    let report = compare(&loaded, &m, &GateConfig::smoke());
    assert!(report.passed(), "self-gate failed");
    assert!(report.digest_match);
}

#[test]
fn reference_workload_shape_is_stable() {
    let config = reference_workload();
    let names: Vec<_> = config.benchmarks.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, REFERENCE_BENCHMARKS);
    assert_eq!(config.nodes.len(), 5);
    assert!(config.pipeline.record_thermal_trace);
}
