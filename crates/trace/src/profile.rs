//! Statistical benchmark profiles driving the synthetic trace generator.
//!
//! The paper's workload is 16 sampled PowerPC SPEC2K traces, which are
//! proprietary. Each [`BenchmarkProfile`] captures the statistical
//! properties that the downstream pipeline actually consumes — instruction
//! mix, instruction-level parallelism, branch behaviour, and memory
//! locality — together with the published per-benchmark IPC and power from
//! Table 3, used for calibration and validation.

use crate::{OpClass, ALL_OP_CLASSES};
use serde::{Deserialize, Serialize};

/// Which SPEC2K suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// SPECint2000.
    Int,
    /// SPECfp2000.
    Fp,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Suite::Int => "SpecInt",
            Suite::Fp => "SpecFP",
        })
    }
}

/// Relative instruction-class weights; need not sum to one (they are
/// normalised on use).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstructionMix {
    /// Weight of integer ALU operations.
    pub int_alu: f64,
    /// Weight of integer multiplies.
    pub int_mul: f64,
    /// Weight of integer divides.
    pub int_div: f64,
    /// Weight of floating-point adds.
    pub fp_add: f64,
    /// Weight of floating-point multiplies.
    pub fp_mul: f64,
    /// Weight of floating-point divides.
    pub fp_div: f64,
    /// Weight of loads.
    pub load: f64,
    /// Weight of stores.
    pub store: f64,
    /// Weight of branches.
    pub branch: f64,
    /// Weight of condition-register logical ops.
    pub cond_reg: f64,
}

impl InstructionMix {
    /// Weights in the canonical [`ALL_OP_CLASSES`] order.
    #[must_use]
    pub fn weights(&self) -> [f64; 10] {
        [
            self.int_alu,
            self.int_mul,
            self.int_div,
            self.fp_add,
            self.fp_mul,
            self.fp_div,
            self.load,
            self.store,
            self.branch,
            self.cond_reg,
        ]
    }

    /// Normalised probability of each class, in canonical order.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative/non-finite or all weights are zero.
    #[must_use]
    pub fn probabilities(&self) -> [f64; 10] {
        let w = self.weights();
        assert!(
            w.iter().all(|v| v.is_finite() && *v >= 0.0),
            "instruction mix weights must be finite and non-negative"
        );
        let total: f64 = w.iter().sum();
        assert!(total > 0.0, "instruction mix must have positive total weight");
        w.map(|v| v / total)
    }

    /// Probability of the given class.
    #[must_use]
    pub fn probability_of(&self, op: OpClass) -> f64 {
        self.probabilities()[op.index()]
    }

    /// Cumulative distribution in canonical order (last entry is 1.0).
    #[must_use]
    pub fn cumulative(&self) -> [f64; 10] {
        let p = self.probabilities();
        let mut acc = 0.0;
        let mut out = [0.0; 10];
        for (i, v) in p.iter().enumerate() {
            acc += v;
            out[i] = acc; // ramp-lint:allow(panic-reach) -- constant-size array indexed below its length
        }
        out[9] = 1.0; // ramp-lint:allow(panic-reach) -- constant-size array indexed below its length
        out
    }

    /// Picks the class at cumulative position `u ∈ [0, 1)`.
    #[must_use]
    pub fn class_at(&self, u: f64) -> OpClass {
        let cum = self.cumulative();
        for (i, &c) in cum.iter().enumerate() {
            if u < c {
                return ALL_OP_CLASSES[i];
            }
        }
        ALL_OP_CLASSES[9]
    }
}

/// Memory-locality model: each access falls in one of three nested regions.
///
/// The *hot* region fits in the 32 KB L1D, the *warm* region fits in the
/// 2 MB L2 but not L1, and the *cold* region fits in neither — so the three
/// fractions directly shape the benchmark's L1/L2/memory hit profile on the
/// Table-2 hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Fraction of accesses to the hot (L1-resident) region.
    pub hot_fraction: f64,
    /// Fraction of accesses to the warm (L2-resident) region.
    pub warm_fraction: f64,
    /// Hot region size in bytes (should be < L1 size).
    pub hot_bytes: u64,
    /// Warm region size in bytes (should be < L2 size).
    pub warm_bytes: u64,
    /// Cold region size in bytes (main-memory footprint).
    pub cold_bytes: u64,
    /// Fraction of accesses that walk sequentially (spatial locality)
    /// rather than jumping uniformly within their region.
    pub sequential_fraction: f64,
}

impl MemoryModel {
    /// Fraction of accesses to the cold region.
    #[must_use]
    pub fn cold_fraction(&self) -> f64 {
        (1.0 - self.hot_fraction - self.warm_fraction).max(0.0)
    }

    /// Validates the model's internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let fracs = [
            ("hot_fraction", self.hot_fraction),
            ("warm_fraction", self.warm_fraction),
            ("sequential_fraction", self.sequential_fraction),
        ];
        for (name, v) in fracs {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(format!("{name} must be in [0,1], got {v}"));
            }
        }
        if self.hot_fraction + self.warm_fraction > 1.0 + 1e-12 {
            return Err("hot_fraction + warm_fraction exceeds 1".to_string());
        }
        if self.hot_bytes == 0 || self.warm_bytes == 0 || self.cold_bytes == 0 {
            return Err("region sizes must be positive".to_string());
        }
        if self.hot_bytes > self.warm_bytes || self.warm_bytes > self.cold_bytes {
            return Err("regions must nest: hot <= warm <= cold".to_string());
        }
        Ok(())
    }
}

/// Branch-behaviour model.
///
/// Branches are drawn from a pool of static sites. A `random_fraction` of
/// sites flip a fair coin on every execution (unlearnable — the predictor
/// will miss ~half of them); the rest are strongly biased and quickly
/// learned. The overall mispredict rate is therefore ≈ `random_fraction/2`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchModel {
    /// Number of static branch sites in the synthetic program.
    pub static_sites: u32,
    /// Fraction of sites with unpredictable outcomes.
    pub random_fraction: f64,
    /// Taken probability of the biased sites.
    pub taken_bias: f64,
}

impl BranchModel {
    /// Expected steady-state mispredict rate under an ideal learner.
    #[must_use]
    pub fn expected_mispredict_rate(&self) -> f64 {
        self.random_fraction * 0.5
            + (1.0 - self.random_fraction) * self.taken_bias.min(1.0 - self.taken_bias)
    }

    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.static_sites == 0 {
            return Err("static_sites must be positive".to_string());
        }
        for (name, v) in [
            ("random_fraction", self.random_fraction),
            ("taken_bias", self.taken_bias),
        ] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(format!("{name} must be in [0,1], got {v}"));
            }
        }
        Ok(())
    }
}

/// One program phase: multipliers applied to the nominal profile while the
/// phase is active.
///
/// Real SPEC2K programs alternate between compute-bound and memory-bound
/// phases at millisecond timescales; the paper's 100 M-instruction traces
/// capture this, and the resulting temperature variation is what separates
/// worst-case from typical operating conditions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Multiplier on the mean register dependency distance (ILP).
    pub dep_multiplier: f64,
    /// Multiplier on the cold-region (main-memory) access fraction.
    pub cold_multiplier: f64,
    /// Minimum cold-region fraction while the phase is active. Lets a
    /// memory-bound phase bite even for benchmarks whose nominal profile
    /// is almost perfectly cache-resident.
    pub cold_floor: f64,
}

impl PhaseSpec {
    /// The identity phase (nominal profile behaviour).
    pub const NOMINAL: PhaseSpec = PhaseSpec {
        dep_multiplier: 1.0,
        cold_multiplier: 1.0,
        cold_floor: 0.0,
    };
}

/// The phase structure of a benchmark: a repeating cycle of [`PhaseSpec`]s,
/// each dwelling for a fixed number of instructions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseModel {
    /// Instructions per phase before switching to the next.
    pub dwell_instructions: u64,
    /// The repeating phase cycle.
    pub phases: Vec<PhaseSpec>,
}

impl PhaseModel {
    /// A phase-free (steady) program.
    #[must_use]
    pub fn steady() -> Self {
        PhaseModel {
            dwell_instructions: u64::MAX,
            phases: vec![PhaseSpec::NOMINAL],
        }
    }

    /// The standard three-phase cycle used for all SPEC2K profiles: a
    /// nominal phase, a compute-bound burst (higher ILP, near-zero memory
    /// misses → hotter), and a memory-bound stretch (serial, miss-heavy →
    /// cooler). The 4 M-instruction dwell (≈2.4 ms at 180 nm) paired with
    /// the pipeline's 8× thermal time-compression reproduces the
    /// dwell-to-thermal-time-constant ratio of the paper's full-length
    /// 100 M-instruction traces.
    #[must_use]
    pub fn standard() -> Self {
        PhaseModel {
            dwell_instructions: 4_000_000,
            phases: vec![
                PhaseSpec::NOMINAL,
                PhaseSpec {
                    dep_multiplier: 2.0,
                    cold_multiplier: 0.1,
                    cold_floor: 0.0,
                },
                PhaseSpec {
                    dep_multiplier: 0.45,
                    cold_multiplier: 3.0,
                    cold_floor: 0.006,
                },
            ],
        }
    }

    /// Instructions in one full cycle through all phases (saturating).
    #[must_use]
    pub fn cycle_instructions(&self) -> u64 {
        self.dwell_instructions
            .saturating_mul(self.phases.len() as u64)
    }

    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err("phase cycle must not be empty".to_string());
        }
        if self.dwell_instructions == 0 {
            return Err("phase dwell must be positive".to_string());
        }
        for (i, p) in self.phases.iter().enumerate() {
            if !(p.dep_multiplier.is_finite() && p.dep_multiplier > 0.0) {
                return Err(format!("phase {i}: dep_multiplier must be positive"));
            }
            if !(p.cold_multiplier.is_finite() && p.cold_multiplier >= 0.0) {
                return Err(format!("phase {i}: cold_multiplier must be non-negative"));
            }
            if !(0.0..=0.25).contains(&p.cold_floor) || !p.cold_floor.is_finite() {
                return Err(format!("phase {i}: cold_floor must be in [0, 0.25]"));
            }
        }
        Ok(())
    }
}

/// Published per-benchmark reference numbers from Table 3 of the paper,
/// kept alongside the profile for calibration and validation reporting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PublishedStats {
    /// IPC on the 180 nm base machine.
    pub ipc: f64,
    /// Average total power (dynamic + leakage) in watts at 180 nm.
    pub power_w: f64,
}

/// Complete statistical profile of one benchmark.
///
/// # Examples
///
/// ```
/// use ramp_trace::spec;
/// let ammp = spec::profile("ammp").unwrap();
/// assert_eq!(ammp.published.ipc, 1.06);
/// ammp.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Benchmark name (SPEC2K short name, e.g. `"gzip"`).
    pub name: String,
    /// Which suite the benchmark belongs to.
    pub suite: Suite,
    /// Instruction-class mix.
    pub mix: InstructionMix,
    /// Mean register dependency distance (instructions); larger = more ILP.
    pub mean_dep_distance: f64,
    /// Memory-locality model.
    pub memory: MemoryModel,
    /// Branch-behaviour model.
    pub branches: BranchModel,
    /// Code footprint in bytes (drives I-cache behaviour).
    pub code_bytes: u64,
    /// Program phase structure.
    pub phases: PhaseModel,
    /// Published Table-3 reference numbers.
    pub published: PublishedStats,
    /// Generator seed (fixed per benchmark for reproducibility).
    pub seed: u64,
}

impl BenchmarkProfile {
    /// Validates every sub-model.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("benchmark name must not be empty".to_string());
        }
        if self.mean_dep_distance.is_nan() || self.mean_dep_distance < 1.0 {
            return Err(format!(
                "mean_dep_distance must be >= 1, got {}",
                self.mean_dep_distance
            ));
        }
        // Exercises the panic-checking path of `probabilities`.
        let p = self.mix.weights();
        if p.iter().any(|v| !v.is_finite() || *v < 0.0) || p.iter().sum::<f64>() <= 0.0 {
            return Err("invalid instruction mix".to_string());
        }
        self.memory.validate().map_err(|e| format!("memory: {e}"))?;
        self.branches
            .validate()
            .map_err(|e| format!("branches: {e}"))?;
        if self.code_bytes < 1024 {
            return Err("code footprint unrealistically small".to_string());
        }
        self.phases.validate().map_err(|e| format!("phases: {e}"))?;
        if self.published.ipc <= 0.0 || self.published.power_w <= 0.0 {
            return Err("published stats must be positive".to_string());
        }
        Ok(())
    }

    /// Probability that an instruction is a floating-point op — a quick
    /// sanity signal that FP benchmarks were profiled as FP-heavy.
    #[must_use]
    pub fn fp_intensity(&self) -> f64 {
        let p = self.mix.probabilities();
        p[OpClass::FpAdd.index()] + p[OpClass::FpMul.index()] + p[OpClass::FpDiv.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> InstructionMix {
        InstructionMix {
            int_alu: 40.0,
            int_mul: 1.0,
            int_div: 0.2,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            load: 28.0,
            store: 12.0,
            branch: 16.0,
            cond_reg: 2.8,
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let p = mix().probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cumulative_is_monotone_and_ends_at_one() {
        let c = mix().cumulative();
        for w in c.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(c[9], 1.0);
    }

    #[test]
    fn class_at_boundaries() {
        let m = mix();
        assert_eq!(m.class_at(0.0), OpClass::IntAlu);
        assert_eq!(m.class_at(0.999999), OpClass::CondReg);
    }

    #[test]
    fn memory_model_validation() {
        let ok = MemoryModel {
            hot_fraction: 0.7,
            warm_fraction: 0.2,
            hot_bytes: 16 << 10,
            warm_bytes: 1 << 20,
            cold_bytes: 64 << 20,
            sequential_fraction: 0.5,
        };
        assert!(ok.validate().is_ok());
        assert!((ok.cold_fraction() - 0.1).abs() < 1e-12);

        let bad = MemoryModel {
            hot_fraction: 0.8,
            warm_fraction: 0.5,
            ..ok
        };
        assert!(bad.validate().is_err());

        let inverted = MemoryModel {
            hot_bytes: 2 << 20,
            warm_bytes: 1 << 20,
            ..ok
        };
        assert!(inverted.validate().is_err());
    }

    #[test]
    fn branch_model_mispredict_estimate() {
        let b = BranchModel {
            static_sites: 256,
            random_fraction: 0.10,
            taken_bias: 0.95,
        };
        // 0.10*0.5 + 0.90*0.05 = 0.095
        assert!((b.expected_mispredict_rate() - 0.095).abs() < 1e-12);
    }
}
