//! Synthetic SPEC2K-like workload traces for the RAMP reliability stack.
//!
//! The paper drives its pipeline with proprietary sampled PowerPC traces of
//! 16 SPEC2K benchmarks. This crate replaces them with deterministic
//! synthetic traces generated from per-benchmark statistical profiles
//! ([`spec`]), preserving the properties the downstream timing simulator
//! responds to: instruction mix, register-dependency structure (ILP),
//! branch predictability, and memory locality.
//!
//! # Quick start
//!
//! ```
//! use ramp_trace::{spec, TraceGenerator, TraceStats};
//!
//! let profile = spec::profile("crafty")?;
//! let stats = TraceStats::from_records(TraceGenerator::new(&profile).take(50_000));
//! assert_eq!(stats.instructions(), 50_000);
//! # Ok::<(), ramp_trace::spec::UnknownBenchmark>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod generator;
mod io;
mod isa;
mod profile;
mod record;
mod rng;
mod sampler;
pub mod spec;
mod stats;

pub use generator::TraceGenerator;
pub use io::{read_trace, write_trace, TraceIoError};
pub use isa::{OpClass, ALL_OP_CLASSES};
pub use profile::{
    BenchmarkProfile, BranchModel, InstructionMix, MemoryModel, PhaseModel, PhaseSpec,
    PublishedStats, Suite,
};
pub use record::{
    ArchReg, BranchInfo, MemRef, TraceRecord, CR_REGS, CR_REG_BASE, FP_REGS, FP_REG_BASE,
    INT_REGS, TOTAL_REGS,
};
pub use rng::Rng;
pub use sampler::{validate_sample, SampleValidation, Sampled, SamplingPlan};
pub use stats::TraceStats;
