//! Trace record types: one record per dynamic instruction.

use crate::OpClass;
use serde::{Deserialize, Serialize};

/// Logical register identifier.
///
/// The traced ISA exposes 32 integer registers (`0..32`), 32 floating-point
/// registers (`32..64`), and 8 condition registers (`64..72`), mirroring
/// the PowerPC register files the Table-2 machine renames (120 INT + 96 FP
/// physical registers).
pub type ArchReg = u8;

/// Number of integer architectural registers.
pub const INT_REGS: u8 = 32;
/// First floating-point architectural register id.
pub const FP_REG_BASE: u8 = 32;
/// Number of floating-point architectural registers.
pub const FP_REGS: u8 = 32;
/// First condition-register id.
pub const CR_REG_BASE: u8 = 64;
/// Number of condition registers.
pub const CR_REGS: u8 = 8;
/// Total architectural register name space.
pub const TOTAL_REGS: u8 = CR_REG_BASE + CR_REGS;

/// A memory reference carried by a load or store record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRef {
    /// Byte address of the access.
    pub addr: u64,
    /// Access size in bytes (1–16).
    pub size: u8,
}

/// Branch outcome carried by a branch record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Whether the branch was taken.
    pub taken: bool,
    /// Target address if taken (fall-through otherwise).
    pub target: u64,
}

/// One dynamic instruction in a trace.
///
/// # Examples
///
/// ```
/// use ramp_trace::{OpClass, TraceRecord};
/// let rec = TraceRecord::new(0x1000, OpClass::IntAlu)
///     .with_sources([Some(3), Some(4)])
///     .with_dest(Some(5));
/// assert_eq!(rec.dest(), Some(5));
/// assert!(rec.mem().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    pc: u64,
    op: OpClass,
    srcs: [Option<ArchReg>; 2],
    dest: Option<ArchReg>,
    mem: Option<MemRef>,
    branch: Option<BranchInfo>,
}

impl TraceRecord {
    /// Creates a record with no operands; attach them with the `with_*`
    /// builder methods.
    #[must_use]
    pub fn new(pc: u64, op: OpClass) -> Self {
        TraceRecord {
            pc,
            op,
            srcs: [None, None],
            dest: None,
            mem: None,
            branch: None,
        }
    }

    /// Sets the source registers.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if a register id is outside the architectural
    /// name space.
    #[must_use]
    pub fn with_sources(mut self, srcs: [Option<ArchReg>; 2]) -> Self {
        for s in srcs.iter().flatten() {
            debug_assert!(*s < TOTAL_REGS, "source register {s} out of range");
        }
        self.srcs = srcs;
        self
    }

    /// Sets the destination register.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the record's class does not write a
    /// register, or the id is out of range.
    #[must_use]
    pub fn with_dest(mut self, dest: Option<ArchReg>) -> Self {
        if let Some(d) = dest {
            debug_assert!(self.op.writes_register(), "{} writes no register", self.op);
            debug_assert!(d < TOTAL_REGS, "dest register {d} out of range");
        }
        self.dest = dest;
        self
    }

    /// Attaches a memory reference.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the class is not a load or store.
    #[must_use]
    pub fn with_mem(mut self, mem: MemRef) -> Self {
        debug_assert!(self.op.is_memory(), "{} is not a memory op", self.op);
        self.mem = Some(mem);
        self
    }

    /// Attaches a branch outcome.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the class is not a branch.
    #[must_use]
    pub fn with_branch(mut self, branch: BranchInfo) -> Self {
        debug_assert!(self.op.is_branch(), "{} is not a branch", self.op);
        self.branch = Some(branch);
        self
    }

    /// Program counter of this instruction.
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Instruction class.
    #[must_use]
    pub fn op(&self) -> OpClass {
        self.op
    }

    /// Source registers (up to two).
    #[must_use]
    pub fn sources(&self) -> [Option<ArchReg>; 2] {
        self.srcs
    }

    /// Destination register, if the instruction writes one.
    #[must_use]
    pub fn dest(&self) -> Option<ArchReg> {
        self.dest
    }

    /// Memory reference, if this is a load or store.
    #[must_use]
    pub fn mem(&self) -> Option<MemRef> {
        self.mem
    }

    /// Branch outcome, if this is a branch.
    #[must_use]
    pub fn branch(&self) -> Option<BranchInfo> {
        self.branch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_load() {
        let rec = TraceRecord::new(0x4000, OpClass::Load)
            .with_sources([Some(1), None])
            .with_dest(Some(2))
            .with_mem(MemRef { addr: 0xdead, size: 8 });
        assert_eq!(rec.pc(), 0x4000);
        assert_eq!(rec.op(), OpClass::Load);
        assert_eq!(rec.mem().unwrap().addr, 0xdead);
    }

    #[test]
    fn builder_assembles_branch() {
        let rec = TraceRecord::new(0x4004, OpClass::Branch)
            .with_sources([Some(64), None])
            .with_branch(BranchInfo { taken: true, target: 0x5000 });
        assert!(rec.branch().unwrap().taken);
        assert_eq!(rec.dest(), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not a memory op")]
    fn mem_on_alu_panics_in_debug() {
        let _ = TraceRecord::new(0, OpClass::IntAlu).with_mem(MemRef { addr: 0, size: 4 });
    }

    #[test]
    fn register_space_partitions() {
        assert_eq!(INT_REGS, FP_REG_BASE);
        assert_eq!(FP_REG_BASE + FP_REGS, CR_REG_BASE);
        assert_eq!(CR_REG_BASE + CR_REGS, TOTAL_REGS);
    }
}
