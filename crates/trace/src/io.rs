//! Compact binary serialisation of instruction traces.
//!
//! Trace-driven workflows routinely capture a trace once and replay it
//! many times; this module provides a simple, versioned, self-describing
//! binary format for [`TraceRecord`] streams, independent of `serde` so the
//! on-disk layout is frozen by this code alone.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "RMPT" | u16 version | u64 record count
//! per record: u8 opclass | u8 flags | pc varint | operand bytes…
//! ```
//!
//! PCs and addresses are delta/varint-encoded against the previous record,
//! which compresses the dominant sequential-fetch pattern to 1–2 bytes.

use crate::record::{BranchInfo, MemRef};
use crate::{OpClass, TraceRecord, ALL_OP_CLASSES};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"RMPT";
const VERSION: u16 = 1;

/// Errors produced while reading a trace stream.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the trace magic.
    BadMagic,
    /// The stream's format version is not supported.
    UnsupportedVersion(u16),
    /// A record was malformed (bad class id or truncated operands).
    Corrupt(&'static str),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failure: {e}"),
            TraceIoError::BadMagic => f.write_str("not a RAMP trace stream"),
            TraceIoError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace version {v}")
            }
            TraceIoError::Corrupt(what) => write!(f, "corrupt trace stream: {what}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> Result<u64, TraceIoError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(TraceIoError::Corrupt("varint overflow"));
        }
        v |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// ZigZag encoding maps small signed deltas to small unsigned varints.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Writes a trace to `w` in the binary format; returns the record count.
///
/// # Errors
///
/// Propagates any I/O error from the underlying writer. A `&mut W` can be
/// passed for any `W: Write`.
///
/// # Examples
///
/// ```
/// use ramp_trace::{read_trace, spec, write_trace, TraceGenerator};
/// let p = spec::profile("gzip")?;
/// let records: Vec<_> = TraceGenerator::new(&p).take(1000).collect();
/// let mut buf = Vec::new();
/// write_trace(&mut buf, records.iter().copied())?;
/// let back = read_trace(&mut buf.as_slice())?;
/// assert_eq!(back, records);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_trace<W: Write, I>(w: &mut W, records: I) -> Result<u64, io::Error>
where
    I: IntoIterator<Item = TraceRecord>,
{
    // Buffer records so the count can lead the stream (traces are
    // replayed far more than written; a counted header lets readers
    // pre-allocate and detect truncation).
    let records: Vec<TraceRecord> = records.into_iter().collect();
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(records.len() as u64).to_le_bytes())?;

    let mut prev_pc = 0u64;
    let mut prev_addr = 0u64;
    for rec in &records {
        w.write_all(&[rec.op().index() as u8])?;
        let srcs = rec.sources();
        let flags = u8::from(srcs[0].is_some())
            | (u8::from(srcs[1].is_some()) << 1)
            | (u8::from(rec.dest().is_some()) << 2)
            | (u8::from(rec.branch().map(|b| b.taken).unwrap_or(false)) << 3);
        w.write_all(&[flags])?;
        write_varint(w, zigzag(rec.pc() as i64 - prev_pc as i64))?;
        prev_pc = rec.pc();
        for s in srcs.into_iter().flatten() {
            w.write_all(&[s])?;
        }
        if let Some(d) = rec.dest() {
            w.write_all(&[d])?;
        }
        if let Some(m) = rec.mem() {
            write_varint(w, zigzag(m.addr as i64 - prev_addr as i64))?;
            prev_addr = m.addr;
            w.write_all(&[m.size])?;
        }
        if let Some(b) = rec.branch() {
            write_varint(w, zigzag(b.target as i64 - rec.pc() as i64))?;
        }
    }
    ramp_obs::counter("trace.io.records_written").add(records.len() as u64);
    ramp_obs::debug!("wrote trace: {} record(s)", records.len());
    Ok(records.len() as u64)
}

/// Reads a complete trace from `r`.
///
/// # Errors
///
/// Returns [`TraceIoError`] for I/O failures, format mismatches, or
/// corrupt/truncated streams.
pub fn read_trace<R: Read>(r: &mut R) -> Result<Vec<TraceRecord>, TraceIoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let mut v = [0u8; 2];
    r.read_exact(&mut v)?;
    let version = u16::from_le_bytes(v);
    if version != VERSION {
        return Err(TraceIoError::UnsupportedVersion(version));
    }
    let mut n = [0u8; 8];
    r.read_exact(&mut n)?;
    let count = u64::from_le_bytes(n);

    let mut out = Vec::with_capacity(usize::try_from(count).unwrap_or(0));
    let mut prev_pc = 0u64;
    let mut prev_addr = 0u64;
    for _ in 0..count {
        let mut head = [0u8; 2];
        r.read_exact(&mut head)?;
        let op = *ALL_OP_CLASSES
            .get(head[0] as usize)
            .ok_or(TraceIoError::Corrupt("bad opclass id"))?;
        let flags = head[1];
        let pc = (prev_pc as i64 + unzigzag(read_varint(r)?)) as u64;
        prev_pc = pc;

        let read_reg = |r: &mut R| -> Result<u8, TraceIoError> {
            let mut b = [0u8; 1];
            r.read_exact(&mut b)?;
            Ok(b[0])
        };
        let src0 = if flags & 1 != 0 {
            Some(read_reg(r)?)
        } else {
            None
        };
        let src1 = if flags & 2 != 0 {
            Some(read_reg(r)?)
        } else {
            None
        };
        let dest = if flags & 4 != 0 {
            Some(read_reg(r)?)
        } else {
            None
        };

        let mut rec = TraceRecord::new(pc, op).with_sources([src0, src1]);
        if let Some(d) = dest {
            if !op.writes_register() {
                return Err(TraceIoError::Corrupt("dest on non-writing class"));
            }
            rec = rec.with_dest(Some(d));
        }
        if op.is_memory() {
            let addr = (prev_addr as i64 + unzigzag(read_varint(r)?)) as u64;
            prev_addr = addr;
            let mut size = [0u8; 1];
            r.read_exact(&mut size)?;
            rec = rec.with_mem(MemRef {
                addr,
                size: size[0],
            });
        }
        if op == OpClass::Branch {
            let target = (pc as i64 + unzigzag(read_varint(r)?)) as u64;
            rec = rec.with_branch(BranchInfo {
                taken: flags & 8 != 0,
                target,
            });
        }
        out.push(rec);
    }
    ramp_obs::counter("trace.io.records_read").add(out.len() as u64);
    ramp_obs::debug!("read trace: {} record(s), format v{version}", out.len());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spec, TraceGenerator};

    fn roundtrip(name: &str, n: usize) {
        let p = spec::profile(name).unwrap();
        let records: Vec<_> = TraceGenerator::new(&p).take(n).collect();
        let mut buf = Vec::new();
        let written = write_trace(&mut buf, records.iter().copied()).unwrap();
        assert_eq!(written, n as u64);
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(back, records, "{name}");
    }

    #[test]
    fn roundtrips_every_benchmark_flavor() {
        roundtrip("gzip", 5_000);
        roundtrip("ammp", 5_000); // FP + memory heavy
        roundtrip("gcc", 5_000); // branch heavy
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).unwrap();
        assert!(read_trace(&mut buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn compression_beats_naive_encoding() {
        let p = spec::profile("mesa").unwrap();
        let records: Vec<_> = TraceGenerator::new(&p).take(10_000).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, records.iter().copied()).unwrap();
        let per_record = buf.len() as f64 / records.len() as f64;
        // A naive fixed layout would need ~30 bytes/record.
        assert!(per_record < 12.0, "{per_record} bytes/record");
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&mut &b"NOPE\x01\x00"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).unwrap();
        buf[4] = 99; // bump version
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::UnsupportedVersion(99)));
    }

    #[test]
    fn truncated_stream_is_an_error_not_a_panic() {
        let p = spec::profile("gap").unwrap();
        let records: Vec<_> = TraceGenerator::new(&p).take(100).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, records.iter().copied()).unwrap();
        for cut in [15, buf.len() / 2, buf.len() - 1] {
            let err = read_trace(&mut &buf[..cut]).unwrap_err();
            assert!(matches!(err, TraceIoError::Io(_)), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_opclass_detected() {
        let mut buf = Vec::new();
        write_trace(
            &mut buf,
            std::iter::once(TraceRecord::new(0x1000, OpClass::IntAlu)),
        )
        .unwrap();
        buf[14] = 200; // first record's opclass byte
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Corrupt(_)));
    }

    #[test]
    fn varint_zigzag_roundtrip() {
        for v in [0i64, 1, -1, 127, -128, 1 << 20, -(1 << 40), i64::MAX / 2] {
            let mut buf = Vec::new();
            write_varint(&mut buf, zigzag(v)).unwrap();
            let back = unzigzag(read_varint(&mut buf.as_slice()).unwrap());
            assert_eq!(back, v);
        }
    }
}
