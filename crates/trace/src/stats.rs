//! Trace statistics: mix histograms and locality summaries.
//!
//! Used both to validate that generated traces match their profiles and to
//! validate that *sampled* traces remain representative of the full trace
//! (the paper relies on validated sampled traces of 100 M instructions).

use crate::{OpClass, TraceRecord, ALL_OP_CLASSES};
use serde::{Deserialize, Serialize};

/// Aggregate statistics over a stream of trace records.
///
/// # Examples
///
/// ```
/// use ramp_trace::{spec, TraceGenerator, TraceStats};
/// let p = spec::profile("gzip")?;
/// let stats = TraceStats::from_records(TraceGenerator::new(&p).take(10_000));
/// assert_eq!(stats.instructions(), 10_000);
/// assert!(stats.class_fraction(ramp_trace::OpClass::Load) > 0.1);
/// # Ok::<(), ramp_trace::spec::UnknownBenchmark>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    counts: [u64; 10],
    branches_taken: u64,
    unique_pcs_estimate: u64,
    mem_bytes_touched_estimate: u64,
    total: u64,
}

impl TraceStats {
    /// Empty statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds statistics from an iterator of records.
    pub fn from_records<I: IntoIterator<Item = TraceRecord>>(records: I) -> Self {
        let span = ramp_obs::span!("trace_stats");
        let mut s = Self::new();
        // Small fixed-size Bloom-style sketches keep this O(1) in memory
        // even for very long traces.
        let mut pc_sketch = vec![false; 1 << 16];
        let mut addr_sketch = vec![false; 1 << 16];
        for r in records {
            s.observe_with_sketches(&r, &mut pc_sketch, &mut addr_sketch);
        }
        s.unique_pcs_estimate = pc_sketch.iter().filter(|&&b| b).count() as u64;
        s.mem_bytes_touched_estimate =
            addr_sketch.iter().filter(|&&b| b).count() as u64 * 64;
        drop(span);
        ramp_obs::debug!(
            "trace stats: {} instruction(s), ~{} unique pc(s), ~{} byte(s) touched",
            s.total,
            s.unique_pcs_estimate,
            s.mem_bytes_touched_estimate
        );
        s
    }

    fn observe_with_sketches(
        &mut self,
        r: &TraceRecord,
        pc_sketch: &mut [bool],
        addr_sketch: &mut [bool],
    ) {
        self.counts[r.op().index()] += 1;
        self.total += 1;
        if let Some(b) = r.branch() {
            if b.taken {
                self.branches_taken += 1;
            }
        }
        let mask = pc_sketch.len() as u64 - 1;
        pc_sketch[(mix64(r.pc()) & mask) as usize] = true;
        if let Some(m) = r.mem() {
            addr_sketch[(mix64(m.addr >> 6) & mask) as usize] = true;
        }
    }

    /// Total instructions observed.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.total
    }

    /// Fraction of instructions in the given class.
    #[must_use]
    pub fn class_fraction(&self, op: OpClass) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts[op.index()] as f64 / self.total as f64
    }

    /// Fraction of branches that were taken.
    #[must_use]
    pub fn taken_rate(&self) -> f64 {
        let branches = self.counts[OpClass::Branch.index()];
        if branches == 0 {
            return 0.0;
        }
        self.branches_taken as f64 / branches as f64
    }

    /// Estimated distinct 64-byte lines touched, as a footprint proxy.
    #[must_use]
    pub fn footprint_estimate_bytes(&self) -> u64 {
        self.mem_bytes_touched_estimate
    }

    /// L1-distance between the class-mix vectors of two traces, in `[0, 2]`.
    ///
    /// Used to validate sampled-trace representativeness: identical mixes
    /// give 0; completely disjoint mixes give 2.
    #[must_use]
    pub fn mix_distance(&self, other: &TraceStats) -> f64 {
        ALL_OP_CLASSES
            .iter()
            .map(|&c| (self.class_fraction(c) - other.class_fraction(c)).abs())
            .sum()
    }
}

/// SplitMix64 finaliser, used as a cheap hash for the sketches.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spec, TraceGenerator};

    #[test]
    fn empty_stats_are_zero() {
        let s = TraceStats::new();
        assert_eq!(s.instructions(), 0);
        assert_eq!(s.class_fraction(OpClass::Load), 0.0);
        assert_eq!(s.taken_rate(), 0.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let p = spec::profile("twolf").unwrap();
        let s = TraceStats::from_records(TraceGenerator::new(&p).take(20_000));
        let sum: f64 = ALL_OP_CLASSES.iter().map(|&c| s.class_fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn taken_rate_reflects_bias() {
        let p = spec::profile("mgrid").unwrap(); // few random branches
        let s = TraceStats::from_records(TraceGenerator::new(&p).take(100_000));
        // Sites are split between bias 0.92 and 0.08, plus 50/50 randoms, so
        // the aggregate taken rate should be near 0.5 but the trace must
        // contain both outcomes.
        assert!(s.taken_rate() > 0.2 && s.taken_rate() < 0.8);
    }

    #[test]
    fn mix_distance_zero_for_self() {
        let p = spec::profile("gap").unwrap();
        let s = TraceStats::from_records(TraceGenerator::new(&p).take(10_000));
        assert_eq!(s.mix_distance(&s), 0.0);
    }

    #[test]
    fn mix_distance_positive_for_different_apps() {
        let a = TraceStats::from_records(
            TraceGenerator::new(&spec::profile("ammp").unwrap()).take(10_000),
        );
        let b = TraceStats::from_records(
            TraceGenerator::new(&spec::profile("crafty").unwrap()).take(10_000),
        );
        assert!(a.mix_distance(&b) > 0.1);
    }

    #[test]
    fn footprint_larger_for_cache_hungry_apps() {
        let small = TraceStats::from_records(
            TraceGenerator::new(&spec::profile("crafty").unwrap()).take(50_000),
        );
        let big = TraceStats::from_records(
            TraceGenerator::new(&spec::profile("ammp").unwrap()).take(50_000),
        );
        assert!(big.footprint_estimate_bytes() > small.footprint_estimate_bytes());
    }
}
