//! Deterministic pseudo-random number generation for trace synthesis.
//!
//! Trace generation must be bit-reproducible across runs, platforms, and
//! dependency upgrades, because every experiment in the paper reproduction
//! is keyed off the generated instruction stream. We therefore implement a
//! small, well-known generator (xoshiro256++ seeded via SplitMix64) locally
//! instead of depending on an external crate whose stream might change
//! between versions.

/// A xoshiro256++ pseudo-random number generator.
///
/// Not cryptographically secure — and deliberately so: it is fast, has a
/// 2²⁵⁶−1 period, and its output stream is fixed forever by this
/// implementation.
///
/// # Examples
///
/// ```
/// use ramp_trace::Rng;
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed, expanding it with SplitMix64
    /// as recommended by the xoshiro authors.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        Rng { s }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits → mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiplicative rejection-free mapping (Lemire); the tiny bias is
        // irrelevant for workload synthesis.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples a geometric-like distance with the given mean (≥ 1), via
    /// inversion of the exponential distribution, rounded up.
    ///
    /// Used for register dependency distances: a mean of 1 produces tight
    /// serial chains, large means produce abundant ILP.
    pub fn geometric(&mut self, mean: f64) -> u64 {
        debug_assert!(mean >= 1.0, "geometric mean must be >= 1");
        if mean <= 1.0 {
            return 1;
        }
        let u = self.next_f64().max(1e-300);
        let sample = (-u.ln() * (mean - 1.0)).round();
        1 + sample.min(1e9) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from(3);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng::seed_from(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::seed_from(5);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = Rng::seed_from(6);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn geometric_mean_tracks_parameter() {
        let mut r = Rng::seed_from(8);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.geometric(6.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 6.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn geometric_minimum_is_one() {
        let mut r = Rng::seed_from(9);
        for _ in 0..10_000 {
            assert!(r.geometric(1.0) == 1);
            assert!(r.geometric(3.0) >= 1);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seed_from(10);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }
}
