//! Systematic trace sampling and representativeness validation.
//!
//! The paper limits each benchmark to a 100 M-instruction sampled trace and
//! cites a validation methodology showing the samples represent the full
//! program. This module provides the analogous machinery for synthetic
//! traces: take periodic windows from a longer stream and check that the
//! sampled statistics stay close to the full-stream statistics.

use crate::{TraceRecord, TraceStats};

/// Configuration for systematic (periodic-window) sampling.
///
/// Out of every `period` instructions, the first `window` are kept.
///
/// # Examples
///
/// ```
/// use ramp_trace::{SamplingPlan, TraceGenerator, spec};
/// let plan = SamplingPlan::new(1_000, 10_000).unwrap();
/// let p = spec::profile("gzip")?;
/// let sampled: Vec<_> = plan.sample(TraceGenerator::new(&p).take(100_000)).collect();
/// assert_eq!(sampled.len(), 10_000); // 10 windows of 1000
/// # Ok::<(), ramp_trace::spec::UnknownBenchmark>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingPlan {
    window: u64,
    period: u64,
}

impl SamplingPlan {
    /// Creates a plan keeping `window` out of every `period` instructions.
    ///
    /// # Errors
    ///
    /// Returns an error message if `window` is zero or exceeds `period`.
    pub fn new(window: u64, period: u64) -> Result<Self, String> {
        if window == 0 {
            return Err("sampling window must be positive".to_string());
        }
        if window > period {
            return Err(format!(
                "sampling window {window} exceeds period {period}"
            ));
        }
        Ok(SamplingPlan { window, period })
    }

    /// Kept fraction of the stream.
    #[must_use]
    pub fn kept_fraction(&self) -> f64 {
        self.window as f64 / self.period as f64
    }

    /// Applies the plan to a record stream.
    pub fn sample<I>(&self, records: I) -> Sampled<I::IntoIter>
    where
        I: IntoIterator<Item = TraceRecord>,
    {
        Sampled {
            inner: records.into_iter(),
            plan: *self,
            position: 0,
        }
    }
}

/// Iterator returned by [`SamplingPlan::sample`].
#[derive(Debug, Clone)]
pub struct Sampled<I> {
    inner: I,
    plan: SamplingPlan,
    position: u64,
}

impl<I: Iterator<Item = TraceRecord>> Iterator for Sampled<I> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        loop {
            let rec = self.inner.next()?;
            let phase = self.position % self.plan.period;
            self.position += 1;
            if phase < self.plan.window {
                return Some(rec);
            }
        }
    }
}

/// Outcome of comparing sampled-trace statistics against the full trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleValidation {
    /// L1 distance between class-mix vectors (0 = identical, 2 = disjoint).
    pub mix_distance: f64,
    /// |sampled − full| branch taken-rate difference.
    pub taken_rate_delta: f64,
    /// Whether both metrics fall within the given tolerance.
    pub representative: bool,
}

/// Compares a sampled trace against its source and reports whether the
/// sample is representative within `tolerance` (a bound applied to both the
/// mix distance and the taken-rate delta).
#[must_use]
pub fn validate_sample(
    full: &TraceStats,
    sampled: &TraceStats,
    tolerance: f64,
) -> SampleValidation {
    let mix_distance = full.mix_distance(sampled);
    let taken_rate_delta = (full.taken_rate() - sampled.taken_rate()).abs();
    let representative = mix_distance <= tolerance && taken_rate_delta <= tolerance;
    ramp_obs::debug!(
        "sample validation: mix_distance={mix_distance:.4} \
         taken_rate_delta={taken_rate_delta:.4} tolerance={tolerance:.4} \
         representative={representative}"
    );
    SampleValidation {
        mix_distance,
        taken_rate_delta,
        representative,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spec, TraceGenerator};

    #[test]
    fn plan_rejects_bad_windows() {
        assert!(SamplingPlan::new(0, 10).is_err());
        assert!(SamplingPlan::new(11, 10).is_err());
        assert!(SamplingPlan::new(10, 10).is_ok());
    }

    #[test]
    fn kept_fraction() {
        let plan = SamplingPlan::new(1, 4).unwrap();
        assert_eq!(plan.kept_fraction(), 0.25);
    }

    #[test]
    fn sample_keeps_expected_count() {
        let p = spec::profile("applu").unwrap();
        let plan = SamplingPlan::new(100, 1000).unwrap();
        let n = plan
            .sample(TraceGenerator::new(&p).take(10_000))
            .count();
        assert_eq!(n, 1000);
    }

    #[test]
    fn sampled_trace_is_representative() {
        // The property the paper's methodology (Iyengar et al.) guarantees
        // for real traces must hold for our synthetic ones by construction.
        let p = spec::profile("gcc").unwrap();
        let full = TraceStats::from_records(TraceGenerator::new(&p).take(200_000));
        let plan = SamplingPlan::new(2_000, 20_000).unwrap();
        let sampled = TraceStats::from_records(
            plan.sample(TraceGenerator::new(&p).take(200_000)),
        );
        let v = validate_sample(&full, &sampled, 0.02);
        assert!(
            v.representative,
            "mix distance {}, taken delta {}",
            v.mix_distance, v.taken_rate_delta
        );
    }

    #[test]
    fn degenerate_full_keep_plan_is_identity() {
        let p = spec::profile("mesa").unwrap();
        let plan = SamplingPlan::new(500, 500).unwrap();
        let a: Vec<_> = TraceGenerator::new(&p).take(500).collect();
        let b: Vec<_> = plan.sample(TraceGenerator::new(&p).take(500)).collect();
        assert_eq!(a, b);
    }
}
