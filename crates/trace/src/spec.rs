//! Profiles for the paper's 16 SPEC2K benchmarks (8 INT + 8 FP).
//!
//! The paper uses proprietary sampled PowerPC traces; each profile here is
//! a statistical stand-in whose knobs were chosen (and then calibrated, see
//! `ramp-bench`'s `calibrate` binary) so the timing simulator reproduces
//! the benchmark's published Table-3 IPC, and the power model its published
//! average power. `published` carries the Table-3 reference values.
//!
//! Knob rationale per benchmark (from well-known SPEC2K characterisations):
//!
//! * `mean_dep_distance` — instruction-level parallelism; the calibrated
//!   degree of freedom for IPC.
//! * memory fractions — `ammp`/`applu`/`twolf`/`vpr` are cache-hungry;
//!   `crafty`/`bzip2`/`perlbmk` are L1-friendly.
//! * `random_fraction` — `gcc`/`twolf`/`vpr` mispredict noticeably more
//!   than loop-dominated FP codes.
//! * `power_residual` — per-benchmark multiplier standing in for
//!   circuit-level detail PowerTimer captured and our structural model
//!   cannot; fitted against Table-3 power (see DESIGN.md §3).

use crate::profile::{
    BenchmarkProfile, BranchModel, InstructionMix, MemoryModel, PhaseModel, PublishedStats,
    Suite,
};

/// Names of the 8 SPECfp2000 benchmarks used by the paper, in Table-3 order.
pub const SPEC_FP: [&str; 8] = [
    "ammp", "applu", "sixtrack", "mgrid", "mesa", "facerec", "wupwise", "apsi",
];

/// Names of the 8 SPECint2000 benchmarks used by the paper, in Table-3 order.
pub const SPEC_INT: [&str; 8] = [
    "vpr", "bzip2", "twolf", "gzip", "perlbmk", "gap", "gcc", "crafty",
];

/// Raw per-benchmark knob table; converted to [`BenchmarkProfile`] by
/// [`profile`].
struct Row {
    name: &'static str,
    suite: Suite,
    /// (ipc, power W) from Table 3.
    published: (f64, f64),
    /// FP fraction of the instruction mix (0 for INT codes).
    fp_frac: f64,
    /// Load / store / branch fractions of the mix.
    load: f64,
    store: f64,
    branch: f64,
    /// Mean register dependency distance (calibrated knob).
    dep: f64,
    /// Memory locality: (hot, warm) fractions; cold is the remainder.
    locality: (f64, f64),
    /// Fraction of sequential (striding) accesses.
    seq: f64,
    /// Fraction of unlearnable branch sites.
    random_br: f64,
    /// Code footprint in KiB.
    code_kib: u64,
    /// Power residual multiplier (calibrated against Table-3 power).
    power_residual: f64,
}

/// The knob table. `dep` and `power_residual` carry calibrated values
/// produced by `cargo run -p ramp-bench --bin calibrate`; the rest encode
/// benchmark character.
const ROWS: [Row; 16] = [
    // ---- SPECfp2000 -----------------------------------------------------
    Row {
        name: "ammp",
        suite: Suite::Fp,
        published: (1.06, 26.08),
        fp_frac: 0.32,
        load: 0.30,
        store: 0.09,
        branch: 0.05,
        dep: 11.0177,
        locality: (0.875, 0.105),
        seq: 0.45,
        random_br: 0.05,
        code_kib: 24,
        power_residual: 0.9953,
    },
    Row {
        name: "applu",
        suite: Suite::Fp,
        published: (1.17, 26.94),
        fp_frac: 0.38,
        load: 0.29,
        store: 0.10,
        branch: 0.03,
        dep: 9.0728,
        locality: (0.900, 0.085),
        seq: 0.70,
        random_br: 0.02,
        code_kib: 28,
        power_residual: 1.0133,
    },
    Row {
        name: "sixtrack",
        suite: Suite::Fp,
        published: (1.38, 27.32),
        fp_frac: 0.40,
        load: 0.26,
        store: 0.09,
        branch: 0.04,
        dep: 10.0453,
        locality: (0.965, 0.030),
        seq: 0.65,
        random_br: 0.03,
        code_kib: 48,
        power_residual: 0.977,
    },
    Row {
        name: "mgrid",
        suite: Suite::Fp,
        published: (1.71, 27.78),
        fp_frac: 0.44,
        load: 0.31,
        store: 0.08,
        branch: 0.02,
        dep: 16.8525,
        locality: (0.940, 0.055),
        seq: 0.80,
        random_br: 0.01,
        code_kib: 16,
        power_residual: 0.9226,
    },
    Row {
        name: "mesa",
        suite: Suite::Fp,
        published: (1.75, 29.21),
        fp_frac: 0.30,
        load: 0.26,
        store: 0.11,
        branch: 0.08,
        dep: 14.9076,
        locality: (0.980, 0.018),
        seq: 0.60,
        random_br: 0.04,
        code_kib: 64,
        power_residual: 0.9328,
    },
    Row {
        name: "facerec",
        suite: Suite::Fp,
        published: (1.79, 29.60),
        fp_frac: 0.36,
        load: 0.28,
        store: 0.08,
        branch: 0.04,
        dep: 14.9076,
        locality: (0.965, 0.031),
        seq: 0.75,
        random_br: 0.02,
        code_kib: 32,
        power_residual: 0.9665,
    },
    Row {
        name: "wupwise",
        suite: Suite::Fp,
        published: (1.66, 30.50),
        fp_frac: 0.42,
        load: 0.27,
        store: 0.10,
        branch: 0.03,
        dep: 15.3938,
        locality: (0.955, 0.040),
        seq: 0.70,
        random_br: 0.02,
        code_kib: 24,
        power_residual: 1.0232,
    },
    Row {
        name: "apsi",
        suite: Suite::Fp,
        published: (1.64, 30.65),
        fp_frac: 0.40,
        load: 0.28,
        store: 0.09,
        branch: 0.04,
        dep: 15.1507,
        locality: (0.950, 0.044),
        seq: 0.70,
        random_br: 0.03,
        code_kib: 40,
        power_residual: 1.0296,
    },
    // ---- SPECint2000 ----------------------------------------------------
    Row {
        name: "vpr",
        suite: Suite::Int,
        published: (1.38, 26.93),
        fp_frac: 0.02,
        load: 0.28,
        store: 0.10,
        branch: 0.15,
        dep: 16.6094,
        locality: (0.935, 0.058),
        seq: 0.40,
        random_br: 0.10,
        code_kib: 40,
        power_residual: 0.8705,
    },
    Row {
        name: "bzip2",
        suite: Suite::Int,
        published: (2.31, 27.71),
        fp_frac: 0.0,
        load: 0.26,
        store: 0.11,
        branch: 0.13,
        dep: 15.6369,
        locality: (0.990, 0.009),
        seq: 0.70,
        random_br: 0.02,
        code_kib: 24,
        power_residual: 0.7876,
    },
    Row {
        name: "twolf",
        suite: Suite::Int,
        published: (1.26, 28.44),
        fp_frac: 0.03,
        load: 0.29,
        store: 0.09,
        branch: 0.14,
        dep: 12.2333,
        locality: (0.920, 0.072),
        seq: 0.35,
        random_br: 0.12,
        code_kib: 48,
        power_residual: 0.9585,
    },
    Row {
        name: "gzip",
        suite: Suite::Int,
        published: (1.85, 28.69),
        fp_frac: 0.0,
        load: 0.25,
        store: 0.12,
        branch: 0.14,
        dep: 7.8572,
        locality: (0.970, 0.029),
        seq: 0.75,
        random_br: 0.05,
        code_kib: 16,
        power_residual: 0.8836,
    },
    Row {
        name: "perlbmk",
        suite: Suite::Int,
        published: (2.25, 30.59),
        fp_frac: 0.0,
        load: 0.28,
        store: 0.10,
        branch: 0.13,
        dep: 15.1507,
        locality: (0.992, 0.007),
        seq: 0.55,
        random_br: 0.02,
        code_kib: 24,
        power_residual: 0.8811,
    },
    Row {
        name: "gap",
        suite: Suite::Int,
        published: (1.76, 31.24),
        fp_frac: 0.01,
        load: 0.27,
        store: 0.11,
        branch: 0.13,
        dep: 10.5315,
        locality: (0.960, 0.036),
        seq: 0.55,
        random_br: 0.05,
        code_kib: 32,
        power_residual: 0.9668,
    },
    Row {
        name: "gcc",
        suite: Suite::Int,
        published: (1.24, 31.73),
        fp_frac: 0.0,
        load: 0.28,
        store: 0.13,
        branch: 0.16,
        dep: 18.5543,
        locality: (0.930, 0.063),
        seq: 0.45,
        random_br: 0.14,
        code_kib: 256,
        power_residual: 1.1062,
    },
    Row {
        name: "crafty",
        suite: Suite::Int,
        published: (2.25, 31.95),
        fp_frac: 0.0,
        load: 0.27,
        store: 0.09,
        branch: 0.14,
        dep: 19.5268,
        locality: (0.990, 0.009),
        seq: 0.50,
        random_br: 0.04,
        code_kib: 32,
        power_residual: 0.9115,
    },
];

impl Row {
    fn to_profile(&self) -> BenchmarkProfile {
        let other = 1.0 - self.fp_frac - self.load - self.store - self.branch;
        assert!(
            other > 0.0,
            "benchmark {} mix fractions exceed 1",
            self.name
        );
        // Split the FP share across add/mul/div and the integer share across
        // alu/mul/div/cr with fixed intra-class proportions typical of
        // SPEC2K instruction profiles.
        let mix = InstructionMix {
            int_alu: other * 0.93,
            int_mul: other * 0.05,
            int_div: other * 0.02 * 0.15,
            fp_add: self.fp_frac * 0.48,
            fp_mul: self.fp_frac * 0.46,
            fp_div: self.fp_frac * 0.06,
            load: self.load,
            store: self.store,
            branch: self.branch,
            cond_reg: other * 0.02 * 0.85,
        };
        BenchmarkProfile {
            name: self.name.to_string(),
            suite: self.suite,
            mix,
            mean_dep_distance: self.dep,
            memory: MemoryModel {
                hot_fraction: self.locality.0,
                warm_fraction: self.locality.1,
                hot_bytes: 16 << 10,
                warm_bytes: 768 << 10,
                cold_bytes: 64 << 20,
                sequential_fraction: self.seq,
            },
            branches: BranchModel {
                static_sites: 512,
                random_fraction: self.random_br,
                taken_bias: 0.97,
            },
            code_bytes: self.code_kib << 10,
            phases: PhaseModel::standard(),
            published: PublishedStats {
                ipc: self.published.0,
                power_w: self.published.1,
            },
            seed: seed_for(self.name),
        }
    }
}

/// Stable 64-bit seed derived from the benchmark name (FNV-1a), so each
/// benchmark's trace is fixed forever and independent of table order.
fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Per-benchmark power residual (see module docs); 1.0 means the structural
/// power model already matches Table 3 exactly.
#[must_use]
pub fn power_residual(name: &str) -> Option<f64> {
    ROWS.iter()
        .find(|r| r.name == name)
        .map(|r| r.power_residual)
}

/// Returns the profile for a benchmark by SPEC2K short name.
///
/// # Errors
///
/// Returns [`UnknownBenchmark`] if the name is not one of the paper's 16.
///
/// # Examples
///
/// ```
/// use ramp_trace::spec;
/// let crafty = spec::profile("crafty")?;
/// assert_eq!(crafty.suite, ramp_trace::Suite::Int);
/// assert!(spec::profile("linpack").is_err());
/// # Ok::<(), ramp_trace::spec::UnknownBenchmark>(())
/// ```
pub fn profile(name: &str) -> Result<BenchmarkProfile, UnknownBenchmark> {
    ROWS.iter()
        .find(|r| r.name == name)
        .map(Row::to_profile)
        .ok_or_else(|| UnknownBenchmark {
            name: name.to_string(),
        })
}

/// All 16 profiles, SpecFP first, each suite in Table-3 order.
#[must_use]
pub fn all_profiles() -> Vec<BenchmarkProfile> {
    ROWS.iter().map(Row::to_profile).collect()
}

/// Profiles of one suite, in Table-3 order.
#[must_use]
pub fn suite_profiles(suite: Suite) -> Vec<BenchmarkProfile> {
    ROWS.iter()
        .filter(|r| r.suite == suite)
        .map(Row::to_profile)
        .collect()
}

/// Error returned by [`profile`] for a name outside the paper's workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBenchmark {
    /// The unrecognised name.
    pub name: String,
}

impl std::fmt::Display for UnknownBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown benchmark `{}` (expected one of the paper's 16 SPEC2K programs)", self.name)
    }
}

impl std::error::Error for UnknownBenchmark {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_profiles_all_valid() {
        let all = all_profiles();
        assert_eq!(all.len(), 16);
        for p in &all {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn suites_have_eight_each() {
        assert_eq!(suite_profiles(Suite::Fp).len(), 8);
        assert_eq!(suite_profiles(Suite::Int).len(), 8);
    }

    #[test]
    fn names_match_table3_order() {
        let fp: Vec<_> = suite_profiles(Suite::Fp)
            .into_iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(fp, SPEC_FP);
        let int: Vec<_> = suite_profiles(Suite::Int)
            .into_iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(int, SPEC_INT);
    }

    #[test]
    fn published_table3_averages() {
        // Table 3: SpecFP average IPC 1.52, power 28.51 W;
        //          SpecInt average IPC 1.79, power 29.66 W.
        let avg = |s: Suite, f: fn(&BenchmarkProfile) -> f64| {
            let v = suite_profiles(s);
            v.iter().map(f).sum::<f64>() / v.len() as f64
        };
        assert!((avg(Suite::Fp, |p| p.published.ipc) - 1.52).abs() < 0.005);
        assert!((avg(Suite::Int, |p| p.published.ipc) - 1.79).abs() < 0.005);
        assert!((avg(Suite::Fp, |p| p.published.power_w) - 28.51).abs() < 0.005);
        assert!((avg(Suite::Int, |p| p.published.power_w) - 29.66).abs() < 0.005);
    }

    #[test]
    fn fp_benchmarks_are_fp_heavy_and_int_are_not() {
        for p in suite_profiles(Suite::Fp) {
            assert!(p.fp_intensity() > 0.25, "{} fp intensity", p.name);
        }
        for p in suite_profiles(Suite::Int) {
            assert!(p.fp_intensity() < 0.05, "{} fp intensity", p.name);
        }
    }

    #[test]
    fn unknown_name_is_error() {
        let err = profile("linpack").unwrap_err();
        assert!(err.to_string().contains("linpack"));
    }

    #[test]
    fn seeds_are_distinct() {
        let mut seeds: Vec<_> = all_profiles().iter().map(|p| p.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 16);
    }

    #[test]
    fn hottest_apps_have_highest_power() {
        // Figure 2/Table 3 correlation the paper calls out: wupwise & apsi
        // are the hottest FP apps, crafty the hottest INT app.
        let fp = suite_profiles(Suite::Fp);
        let max_fp = fp
            .iter()
            .max_by(|a, b| a.published.power_w.total_cmp(&b.published.power_w))
            .unwrap();
        assert_eq!(max_fp.name, "apsi");
        let int = suite_profiles(Suite::Int);
        let max_int = int
            .iter()
            .max_by(|a, b| a.published.power_w.total_cmp(&b.published.power_w))
            .unwrap();
        assert_eq!(max_int.name, "crafty");
    }
}
