//! Abstract instruction classes for the PowerPC-like traced ISA.
//!
//! The timing simulator does not execute semantics; like Turandot it is
//! trace-driven, so an instruction is fully described by its class, its
//! register dependences, and (for memory and branch instructions) its
//! effective address / outcome. The classes below map one-to-one onto the
//! functional-unit types of the Table-2 machine.

use serde::{Deserialize, Serialize};

/// Instruction class, determining which functional unit executes it and
/// with what latency.
///
/// # Examples
///
/// ```
/// use ramp_trace::OpClass;
/// assert!(OpClass::Load.is_memory());
/// assert!(OpClass::FpDiv.is_float());
/// assert!(!OpClass::Branch.writes_register());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer add/sub/logical/shift (1-cycle on the Table-2 machine).
    IntAlu,
    /// Integer multiply (7 cycles).
    IntMul,
    /// Integer divide (35 cycles).
    IntDiv,
    /// Floating-point add/sub/convert (4 cycles).
    FpAdd,
    /// Floating-point multiply / fused multiply-add (4 cycles).
    FpMul,
    /// Floating-point divide (12 cycles).
    FpDiv,
    /// Memory load through the load-store units.
    Load,
    /// Memory store through the load-store units.
    Store,
    /// Conditional or unconditional branch (branch unit).
    Branch,
    /// Logical condition-register operation (the POWER4 LCR unit).
    CondReg,
}

/// All instruction classes, in a fixed canonical order (used for mix
/// histograms and round-tripping).
pub const ALL_OP_CLASSES: [OpClass; 10] = [
    OpClass::IntAlu,
    OpClass::IntMul,
    OpClass::IntDiv,
    OpClass::FpAdd,
    OpClass::FpMul,
    OpClass::FpDiv,
    OpClass::Load,
    OpClass::Store,
    OpClass::Branch,
    OpClass::CondReg,
];

impl OpClass {
    /// Whether this instruction accesses memory.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether this instruction executes on a floating-point unit.
    #[must_use]
    pub fn is_float(self) -> bool {
        matches!(self, OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv)
    }

    /// Whether this instruction executes on an integer unit.
    #[must_use]
    pub fn is_integer(self) -> bool {
        matches!(self, OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv)
    }

    /// Whether this instruction is a control transfer.
    #[must_use]
    pub fn is_branch(self) -> bool {
        self == OpClass::Branch
    }

    /// Whether this instruction produces a register result that later
    /// instructions can depend on.
    ///
    /// Stores and branches consume values but define none (condition-code
    /// definition by branches is ignored at this abstraction level).
    #[must_use]
    pub fn writes_register(self) -> bool {
        !matches!(self, OpClass::Store | OpClass::Branch)
    }

    /// Index of this class within [`ALL_OP_CLASSES`].
    #[must_use]
    pub fn index(self) -> usize {
        ALL_OP_CLASSES
            .iter()
            .position(|&c| c == self)
            .expect("class present in canonical list") // ramp-lint:allow(panic-hygiene) -- canonical class list covers every class
    }
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            OpClass::IntAlu => "int-alu",
            OpClass::IntMul => "int-mul",
            OpClass::IntDiv => "int-div",
            OpClass::FpAdd => "fp-add",
            OpClass::FpMul => "fp-mul",
            OpClass::FpDiv => "fp-div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::CondReg => "cond-reg",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_roundtrips() {
        for (i, &c) in ALL_OP_CLASSES.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn classifications_are_disjoint() {
        for &c in &ALL_OP_CLASSES {
            let kinds = [c.is_memory(), c.is_float(), c.is_integer(), c.is_branch()];
            assert!(
                kinds.iter().filter(|&&k| k).count() <= 1,
                "{c} belongs to more than one class"
            );
        }
    }

    #[test]
    fn writers() {
        assert!(OpClass::Load.writes_register());
        assert!(OpClass::CondReg.writes_register());
        assert!(!OpClass::Store.writes_register());
        assert!(!OpClass::Branch.writes_register());
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(OpClass::FpMul.to_string(), "fp-mul");
        assert_eq!(OpClass::CondReg.to_string(), "cond-reg");
    }
}
