//! Synthetic trace generation from a [`BenchmarkProfile`].
//!
//! The generator is an [`Iterator`] over [`TraceRecord`]s. It maintains a
//! small amount of program state (recent register writers, per-region
//! memory cursors, a static branch-site pool) so that the emitted stream
//! has realistic register dependences, spatial/temporal memory locality,
//! and learnable vs. unlearnable branches — the properties the timing
//! simulator's IPC actually responds to.

use crate::profile::BenchmarkProfile;
use crate::record::{
    ArchReg, BranchInfo, MemRef, CR_REGS, CR_REG_BASE, FP_REGS, FP_REG_BASE, INT_REGS,
};
use crate::{OpClass, Rng, TraceRecord};
use std::sync::Arc;

/// Base virtual address of the synthetic code segment.
const CODE_BASE: u64 = 0x0010_0000;
/// Base virtual address of the synthetic data segment.
const DATA_BASE: u64 = 0x1000_0000;
/// Gap between data regions so they never alias in the caches.
const REGION_GAP: u64 = 0x1000_0000;
/// Instruction size in bytes (fixed-width PowerPC-like ISA).
const INSN_BYTES: u64 = 4;

/// Ring buffer of recent destination registers, used to realise a sampled
/// dependency distance as a concrete register name.
#[derive(Debug, Clone)]
struct RecentWriters {
    ring: Vec<Option<ArchReg>>,
    head: usize,
}

impl RecentWriters {
    fn new(capacity: usize) -> Self {
        RecentWriters {
            ring: vec![None; capacity],
            head: 0,
        }
    }

    fn push(&mut self, reg: Option<ArchReg>) {
        self.ring[self.head] = reg;
        self.head = (self.head + 1) % self.ring.len();
    }

    /// Register written `distance` instructions ago (1 = previous), walking
    /// forward until a writer is found.
    fn writer_at(&self, distance: u64) -> Option<ArchReg> {
        let cap = self.ring.len() as u64;
        let mut d = distance.clamp(1, cap);
        while d <= cap {
            let idx = (self.head as u64 + cap - d) % cap;
            if let Some(reg) = self.ring[idx as usize] {
                return Some(reg);
            }
            d += 1;
        }
        None
    }
}

/// How many generated records accumulate locally before being folded into
/// the shared per-profile instruction counter. Keeps the per-record cost
/// of instrumentation to one branch + one local increment.
const TALLY_BATCH: u64 = 4096;

/// Batched handle on the `trace.instructions.<profile>` counter.
///
/// Clones start with an empty pending batch (the original flushes its
/// own), and drops flush the remainder, so the counter converges to the
/// exact number of records emitted whatever mix of clones and partial
/// iterations produced them.
#[derive(Debug)]
struct InsnTally {
    counter: Arc<ramp_obs::Counter>,
    pending: u64,
}

impl InsnTally {
    fn new(profile_name: &str) -> Self {
        InsnTally {
            // ramp-lint:allow(span-hygiene) -- one name per benchmark profile; the profile set is the fixed paper suite
            counter: ramp_obs::counter(&format!("trace.instructions.{profile_name}")),
            pending: 0,
        }
    }

    #[inline]
    fn record(&mut self) {
        self.pending += 1;
        if self.pending >= TALLY_BATCH {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.pending > 0 {
            self.counter.add(self.pending);
            self.pending = 0;
        }
    }
}

impl Clone for InsnTally {
    fn clone(&self) -> Self {
        InsnTally {
            counter: Arc::clone(&self.counter),
            // The original still owns (and will flush) its pending batch.
            pending: 0,
        }
    }
}

impl Drop for InsnTally {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A static branch site in the synthetic program.
#[derive(Debug, Clone, Copy)]
struct BranchSite {
    pc: u64,
    target: u64,
    /// Taken probability for this site (0.5 for unlearnable sites).
    taken_prob: f64,
}

/// Synthetic trace generator; see the module docs.
///
/// # Examples
///
/// ```
/// use ramp_trace::{spec, TraceGenerator};
/// let profile = spec::profile("gzip").unwrap();
/// let trace: Vec<_> = TraceGenerator::new(&profile).take(1000).collect();
/// assert_eq!(trace.len(), 1000);
/// // Deterministic: regenerating yields the identical stream.
/// let again: Vec<_> = TraceGenerator::new(&profile).take(1000).collect();
/// assert_eq!(trace, again);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: BenchmarkProfile,
    rng: Rng,
    cumulative_mix: [f64; 10],
    writers: RecentWriters,
    /// Round-robin cursors for allocating destination registers.
    next_int_dst: u8,
    next_fp_dst: u8,
    next_cr_dst: u8,
    /// Current fetch PC within the code segment.
    pc: u64,
    branch_sites: Vec<BranchSite>,
    /// Number of leading (hot-region) sites that receive most executions.
    hot_sites: u64,
    /// Sequential cursors per data region (hot, warm, cold).
    seq_cursor: [u64; 3],
    emitted: u64,
    /// Per-phase effective (dep distance, hot fraction, warm fraction).
    phase_params: Vec<(f64, f64, f64)>,
    current_phase: usize,
    /// Batched `trace.instructions.<profile>` counter.
    tally: InsnTally,
}

impl TraceGenerator {
    /// Creates a generator for the given profile, seeded from
    /// `profile.seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`BenchmarkProfile::validate`]; invalid
    /// profiles are a programming error in the caller, not a runtime
    /// condition.
    #[must_use]
    pub fn new(profile: &BenchmarkProfile) -> Self {
        if let Err(e) = profile.validate() {
            panic!("invalid benchmark profile {:?}: {e}", profile.name); // ramp-lint:allow(panic-hygiene) -- documented constructor contract for invalid profiles
        }
        let _setup = ramp_obs::span!("trace_setup", "app={}", profile.name);
        let mut rng = Rng::seed_from(profile.seed);
        let code_insns = (profile.code_bytes / INSN_BYTES).max(64);
        // Spread sites evenly so no two static branches share a PC (two
        // opposite-bias sites at one address would alias in any real
        // predictor and thrash it, which no compiled program does).
        let n_sites = u64::from(profile.branches.static_sites);
        let sites = (0..n_sites)
            .map(|i| {
                let slot = (i * code_insns) / n_sites.max(1);
                let pc = CODE_BASE + slot * INSN_BYTES;
                // Compiled control flow is overwhelmingly local (loops and
                // if/else within a function); only a small fraction of
                // transfers are far calls across the code image.
                let target_slot = if rng.chance(0.05) {
                    rng.below(code_insns)
                } else {
                    let span = 512.min(code_insns); // ±1 KiB neighbourhood
                    let delta = rng.below(span) as i64 - (span / 2) as i64;
                    (slot as i64 + delta).rem_euclid(code_insns as i64) as u64
                };
                let target = CODE_BASE + target_slot * INSN_BYTES;
                let taken_prob = if rng.chance(profile.branches.random_fraction) {
                    0.5
                } else if rng.chance(0.5) {
                    profile.branches.taken_bias
                } else {
                    1.0 - profile.branches.taken_bias
                };
                BranchSite {
                    pc,
                    target,
                    taken_prob,
                }
            })
            .collect();
        TraceGenerator {
            cumulative_mix: profile.mix.cumulative(),
            profile: profile.clone(),
            rng,
            // Window larger than the ROB so any realisable distance exists.
            writers: RecentWriters::new(256),
            next_int_dst: 0,
            next_fp_dst: 0,
            next_cr_dst: 0,
            pc: CODE_BASE,
            hot_sites: {
                // Dynamic execution concentrates in a hot code region of at
                // most 16 KiB (the 90/10 rule); sites are evenly spaced, so
                // the leading fraction of the site list covers it.
                let hot_code = (16u64 << 10).min(profile.code_bytes);
                let n = u64::from(profile.branches.static_sites);
                ((n * hot_code) / profile.code_bytes).clamp(8.min(n), n)
            },
            branch_sites: sites,
            seq_cursor: [0, 0, 0],
            emitted: 0,
            phase_params: profile
                .phases
                .phases
                .iter()
                .map(|spec| {
                    let m = &profile.memory;
                    // Rescale the cold fraction, shrinking hot+warm
                    // proportionally to keep the fractions normalised.
                    let cold = (m.cold_fraction() * spec.cold_multiplier)
                        .max(spec.cold_floor)
                        .min(0.25);
                    let hw = m.hot_fraction + m.warm_fraction;
                    let scale = if hw > 0.0 { (1.0 - cold) / hw } else { 0.0 };
                    (
                        (profile.mean_dep_distance * spec.dep_multiplier).max(1.0),
                        m.hot_fraction * scale,
                        m.warm_fraction * scale,
                    )
                })
                .collect(),
            current_phase: 0,
            tally: InsnTally::new(&profile.name),
        }
    }

    /// Number of records emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The profile this generator was built from.
    #[must_use]
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    fn pick_class(&mut self) -> OpClass {
        let u = self.rng.next_f64();
        for (i, &c) in self.cumulative_mix.iter().enumerate() {
            if u < c {
                return crate::ALL_OP_CLASSES[i];
            }
        }
        crate::ALL_OP_CLASSES[9]
    }

    fn alloc_dest(&mut self, op: OpClass) -> ArchReg {
        if op.is_float() {
            let r = FP_REG_BASE + self.next_fp_dst;
            self.next_fp_dst = (self.next_fp_dst + 1) % FP_REGS;
            r
        } else if op == OpClass::CondReg {
            let r = CR_REG_BASE + self.next_cr_dst;
            self.next_cr_dst = (self.next_cr_dst + 1) % CR_REGS;
            r
        } else {
            let r = self.next_int_dst;
            self.next_int_dst = (self.next_int_dst + 1) % INT_REGS;
            r
        }
    }

    fn sample_source(&mut self) -> Option<ArchReg> {
        let dep = self.phase_params[self.current_phase].0;
        let d = self.rng.geometric(dep);
        self.writers.writer_at(d)
    }

    /// Generates an effective address according to the memory model,
    /// with region fractions adjusted for the current phase.
    fn gen_address(&mut self) -> u64 {
        let m = &self.profile.memory;
        let (_, hot, warm) = self.phase_params[self.current_phase];
        let u = self.rng.next_f64();
        let (region, bytes) = if u < hot {
            (0usize, m.hot_bytes)
        } else if u < hot + warm {
            (1usize, m.warm_bytes)
        } else {
            (2usize, m.cold_bytes)
        };
        let base = DATA_BASE + region as u64 * REGION_GAP;
        let offset = if self.rng.chance(m.sequential_fraction) {
            // Stride walk with cache-line-friendly steps.
            let cur = self.seq_cursor[region];
            self.seq_cursor[region] = (cur + 8) % bytes;
            cur
        } else {
            self.rng.below(bytes / 8) * 8
        };
        base + offset
    }

    fn advance_pc(&mut self) {
        self.pc += INSN_BYTES;
        let end = CODE_BASE + self.profile.code_bytes;
        if self.pc >= end {
            self.pc = CODE_BASE;
        }
    }

    fn gen_branch(&mut self) -> TraceRecord {
        // 92 % of dynamic branches come from the hot code region.
        let site_idx = if self.rng.chance(0.92) {
            self.rng.below(self.hot_sites) as usize
        } else {
            self.rng.below(self.branch_sites.len() as u64) as usize
        };
        let site = self.branch_sites[site_idx];
        let taken = self.rng.chance(site.taken_prob);
        let src = self.sample_source();
        let rec = TraceRecord::new(site.pc, OpClass::Branch)
            .with_sources([src, None])
            .with_branch(BranchInfo {
                taken,
                target: site.target,
            });
        // Control flow: continue fetching from target or fall-through.
        self.pc = if taken {
            site.target
        } else {
            site.pc + INSN_BYTES
        };
        rec
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        // Phase switch on dwell boundaries.
        let dwell = self.profile.phases.dwell_instructions;
        if dwell != u64::MAX && self.emitted > 0 && self.emitted.is_multiple_of(dwell) {
            self.current_phase = (self.current_phase + 1) % self.phase_params.len();
        }
        let op = self.pick_class();
        let rec = match op {
            OpClass::Branch => self.gen_branch(),
            OpClass::Load => {
                let addr = self.gen_address();
                let src = self.sample_source();
                let dst = self.alloc_dest(op);
                let pc = self.pc;
                self.advance_pc();
                TraceRecord::new(pc, op)
                    .with_sources([src, None])
                    .with_dest(Some(dst))
                    .with_mem(MemRef { addr, size: 8 })
            }
            OpClass::Store => {
                let addr = self.gen_address();
                let data = self.sample_source();
                let base = self.sample_source();
                let pc = self.pc;
                self.advance_pc();
                TraceRecord::new(pc, op)
                    .with_sources([data, base])
                    .with_mem(MemRef { addr, size: 8 })
            }
            _ => {
                let a = self.sample_source();
                let b = if self.rng.chance(0.6) {
                    self.sample_source()
                } else {
                    None
                };
                let dst = self.alloc_dest(op);
                let pc = self.pc;
                self.advance_pc();
                TraceRecord::new(pc, op)
                    .with_sources([a, b])
                    .with_dest(Some(dst))
            }
        };
        self.writers.push(rec.dest());
        self.emitted += 1;
        self.tally.record();
        Some(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    fn take(name: &str, n: usize) -> Vec<TraceRecord> {
        let p = spec::profile(name).unwrap();
        TraceGenerator::new(&p).take(n).collect()
    }

    #[test]
    fn deterministic_stream() {
        let a = take("gcc", 5_000);
        let b = take("gcc", 5_000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_benchmarks_differ() {
        let a = take("gcc", 1_000);
        let b = take("ammp", 1_000);
        assert_ne!(a, b);
    }

    #[test]
    fn mix_converges_to_profile() {
        let p = spec::profile("gzip").unwrap();
        let n = 200_000;
        let trace = take("gzip", n);
        let loads = trace.iter().filter(|r| r.op() == OpClass::Load).count();
        let expect = p.mix.probability_of(OpClass::Load);
        let got = loads as f64 / n as f64;
        assert!(
            (got - expect).abs() < 0.01,
            "load fraction {got} vs profile {expect}"
        );
    }

    #[test]
    fn branch_records_have_outcomes_and_others_do_not() {
        for rec in take("crafty", 10_000) {
            assert_eq!(rec.branch().is_some(), rec.op() == OpClass::Branch);
            assert_eq!(rec.mem().is_some(), rec.op().is_memory());
        }
    }

    #[test]
    fn pcs_stay_inside_code_segment() {
        let p = spec::profile("mesa").unwrap();
        for rec in take("mesa", 50_000) {
            assert!(rec.pc() >= CODE_BASE);
            assert!(rec.pc() < CODE_BASE + p.code_bytes);
        }
    }

    #[test]
    fn addresses_respect_region_bounds() {
        let p = spec::profile("mcf_like_ammp");
        assert!(p.is_err() || p.is_ok()); // name probe, not a real assert
        let p = spec::profile("ammp").unwrap();
        for rec in take("ammp", 50_000) {
            if let Some(m) = rec.mem() {
                assert!(m.addr >= DATA_BASE);
                assert!(m.addr < DATA_BASE + 2 * REGION_GAP + p.memory.cold_bytes);
            }
        }
    }

    #[test]
    fn sources_reference_previous_writers() {
        // Every non-None source register must have been written earlier in
        // the stream (within the ring-buffer window) or belong to the
        // initial live-in set (None here, since the ring starts empty).
        let trace = take("applu", 20_000);
        let mut written = std::collections::HashSet::new();
        for rec in trace {
            for s in rec.sources().into_iter().flatten() {
                assert!(
                    written.contains(&s),
                    "source {s} read before any write at pc {:#x}",
                    rec.pc()
                );
            }
            if let Some(d) = rec.dest() {
                written.insert(d);
            }
        }
    }

    #[test]
    fn emitted_counter_tracks() {
        let p = spec::profile("vpr").unwrap();
        let mut g = TraceGenerator::new(&p);
        for _ in 0..123 {
            g.next();
        }
        assert_eq!(g.emitted(), 123);
    }

    // The tally tests below claim profiles no other test in this crate
    // touches ("wupwise", "facerec"), so the exact-count assertions hold
    // even with the test harness running modules concurrently.

    #[test]
    fn instruction_counter_converges_after_drop() {
        let metric = ramp_obs::counter("trace.instructions.wupwise");
        let before = metric.get();
        let p = spec::profile("wupwise").unwrap();
        {
            let mut g = TraceGenerator::new(&p);
            // More than one TALLY_BATCH plus a remainder, so both the
            // in-loop flush and the drop flush are exercised.
            for _ in 0..(TALLY_BATCH + 100) {
                g.next();
            }
        }
        assert_eq!(metric.get() - before, TALLY_BATCH + 100);
    }

    #[test]
    fn cloned_generator_does_not_double_count() {
        let metric = ramp_obs::counter("trace.instructions.facerec");
        let before = metric.get();
        let p = spec::profile("facerec").unwrap();
        {
            let mut g = TraceGenerator::new(&p);
            for _ in 0..10 {
                g.next();
            }
            // Clone mid-batch: the clone must not re-flush the original's
            // 10 pending records on drop.
            let mut h = g.clone();
            for _ in 0..7 {
                h.next();
            }
        }
        assert_eq!(metric.get() - before, 17);
    }

    #[test]
    fn setup_span_is_recorded() {
        let p = spec::profile("wupwise").unwrap();
        let _ = TraceGenerator::new(&p);
        let stats = ramp_obs::span_stats();
        assert!(
            stats.iter().any(|s| s.path.ends_with("trace_setup")),
            "trace_setup span missing from {:?}",
            stats.iter().map(|s| s.path.clone()).collect::<Vec<_>>()
        );
    }
}
