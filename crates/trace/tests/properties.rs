//! Property-based tests of the trace generator and trace I/O over random
//! (but valid) workload profiles.

use proptest::prelude::*;
use ramp_trace::{
    read_trace, write_trace, BenchmarkProfile, BranchModel, InstructionMix, MemoryModel,
    PhaseModel, PhaseSpec, PublishedStats, Suite, TraceGenerator, TraceStats,
};

/// Strategy: a random valid benchmark profile.
fn arb_profile() -> impl Strategy<Value = BenchmarkProfile> {
    (
        0.0f64..0.5,            // fp fraction
        0.1f64..0.35,           // load
        0.02f64..0.15,          // store
        0.01f64..0.2,           // branch
        1.0f64..40.0,           // dep
        0.5f64..0.98,           // hot fraction
        0.0f64..0.3,            // random branches
        0.0f64..1.0,            // sequential fraction
        4u64..256,              // code KiB
        any::<u64>(),           // seed
    )
        .prop_filter("mix must leave room for ALU ops", |(fp, ld, st, br, ..)| {
            fp + ld + st + br < 0.9
        })
        .prop_map(
            |(fp, load, store, branch, dep, hot, random_br, seq, code_kib, seed)| {
                let other = 1.0 - fp - load - store - branch;
                let warm = (1.0 - hot) * 0.7;
                BenchmarkProfile {
                    name: "random".into(),
                    suite: Suite::Int,
                    mix: InstructionMix {
                        int_alu: other * 0.95,
                        int_mul: other * 0.03,
                        int_div: other * 0.005,
                        fp_add: fp * 0.5,
                        fp_mul: fp * 0.45,
                        fp_div: fp * 0.05,
                        load,
                        store,
                        branch,
                        cond_reg: other * 0.015,
                    },
                    mean_dep_distance: dep,
                    memory: MemoryModel {
                        hot_fraction: hot,
                        warm_fraction: warm,
                        hot_bytes: 16 << 10,
                        warm_bytes: 768 << 10,
                        cold_bytes: 64 << 20,
                        sequential_fraction: seq,
                    },
                    branches: BranchModel {
                        static_sites: 128,
                        random_fraction: random_br,
                        taken_bias: 0.95,
                    },
                    code_bytes: code_kib << 10,
                    phases: PhaseModel {
                        dwell_instructions: 50_000,
                        phases: vec![
                            PhaseSpec::NOMINAL,
                            PhaseSpec {
                                dep_multiplier: 1.5,
                                cold_multiplier: 0.5,
                                cold_floor: 0.0,
                            },
                        ],
                    },
                    published: PublishedStats {
                        ipc: 1.0,
                        power_w: 25.0,
                    },
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every random profile validates and generates well-formed records.
    #[test]
    fn random_profiles_generate_valid_records(profile in arb_profile()) {
        profile.validate().unwrap();
        let mut written: std::collections::HashSet<u8> = std::collections::HashSet::new();
        for rec in TraceGenerator::new(&profile).take(5_000) {
            // Operand structure matches the class.
            prop_assert_eq!(rec.mem().is_some(), rec.op().is_memory());
            prop_assert_eq!(rec.branch().is_some(), rec.op().is_branch());
            prop_assert_eq!(rec.dest().is_some(), rec.op().writes_register());
            // Dataflow closure: sources reference earlier writers.
            for s in rec.sources().into_iter().flatten() {
                prop_assert!(written.contains(&s), "read-before-write of {s}");
            }
            if let Some(d) = rec.dest() {
                written.insert(d);
            }
        }
    }

    /// The generated instruction mix converges to the profile's.
    #[test]
    fn mix_converges(profile in arb_profile()) {
        let stats = TraceStats::from_records(TraceGenerator::new(&profile).take(40_000));
        for op in ramp_trace::ALL_OP_CLASSES {
            let want = profile.mix.probability_of(op);
            let got = stats.class_fraction(op);
            prop_assert!(
                (got - want).abs() < 0.02,
                "{op}: got {got}, profile says {want}"
            );
        }
    }

    /// Binary trace I/O round-trips any generated stream exactly.
    #[test]
    fn io_roundtrip(profile in arb_profile(), n in 1usize..3_000) {
        let records: Vec<_> = TraceGenerator::new(&profile).take(n).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, records.iter().copied()).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back, records);
    }

    /// Generation is a pure function of the profile (seed included).
    #[test]
    fn determinism(profile in arb_profile()) {
        let a: Vec<_> = TraceGenerator::new(&profile).take(2_000).collect();
        let b: Vec<_> = TraceGenerator::new(&profile).take(2_000).collect();
        prop_assert_eq!(a, b);
    }
}
