//! Population Monte Carlo fleet simulator.
//!
//! The paper models one *average* chip per technology node. Real
//! deployments care about the population: across process variation, when
//! does the 1st-percentile chip fail, what is the cumulative return rate
//! (DPPM) at each warranty year, and how do those curves move from
//! 180 nm to 65 nm? This crate answers that by Monte Carlo over the
//! qualified FIT models in `ramp_core`:
//!
//! 1. **Anchor** — one real pipeline run per (benchmark, node)
//!    ([`ramp_core::QueryEngine::population_anchor`]) prices the average
//!    chip and freezes the per-structure operating points.
//! 2. **Sample** — each chip draws process variation (gate-oxide
//!    thickness, operating temperature, interconnect geometry; module
//!    [`variation`]) from an independent counter-based stream (module
//!    [`rng`]), is re-priced by rate-ratio transfer (module [`chip`]),
//!    and draws per-mechanism lifetimes: lognormal for EM/SM/TDDB,
//!    Coffin–Manson/Weibull for TC (module [`sampler`]). The chip fails
//!    at the earliest mechanism (series system, matching SOFR).
//! 3. **Reduce** — per-chunk [`PopulationAccumulator`]s (module
//!    [`accumulator`]) hold integer-only merge-invariant state, so the
//!    parallel reduction is byte-identical for any `RAMP_THREADS` and
//!    any chunk size; memory stays O(bins), not O(fleet).
//!
//! # Determinism contract
//!
//! For a fixed [`FleetConfig`], [`run_fleet`]'s
//! [`FleetResults::population_json`] is byte-identical across thread
//! counts, chunk sizes, and reruns. Enforced by
//! `tests/fleet_determinism.rs` and the `fleet-smoke` CI job.
//!
//! # Examples
//!
//! ```no_run
//! use ramp_core::{QueryEngine, StudyConfig};
//! use ramp_fleet::{run_fleet, FleetConfig};
//!
//! let config = StudyConfig::quick().with_benchmarks(&["gzip"])?;
//! let engine = QueryEngine::calibrate(&config)?;
//! let fleet = FleetConfig { chips: 100_000, ..FleetConfig::default() };
//! let results = run_fleet(&engine, &fleet)?;
//! for pop in &results.populations {
//!     println!("{}: p1={:.1}y dppm@5y={:.0}", pop.label,
//!              pop.summary.p1_years, pop.summary.dppm_by_year[4]);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod accumulator;
pub mod chip;
pub mod population;
pub mod rng;
pub mod sampler;
pub mod variation;

pub use accumulator::{PopulationAccumulator, PopulationSummary, YEAR_MARKS};
pub use chip::{ChipOutcome, ChipSampler};
pub use population::{run_fleet, FleetConfig, FleetResults, NodePopulation};
pub use rng::{chip_rng, open_unit};
pub use sampler::{inverse_normal_cdf, CoffinManson, Lognormal, TruncatedNormal};
pub use variation::{ChipVariation, VariationModel};
