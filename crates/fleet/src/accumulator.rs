//! Streaming, merge-invariant population statistics.
//!
//! A million-chip fleet cannot keep a million failure times around just to
//! sort them — and more subtly, it cannot keep *floating-point sums* in
//! its mergeable state, because float addition is not associative and the
//! chunked/unchunked and 1-thread/8-thread reductions would then differ in
//! the last bits, breaking the byte-identity contract. The accumulator
//! therefore stores only:
//!
//! * integer counts in log-spaced failure-time bins (quantile estimation),
//! * exact integer failure counts at whole-year marks (DPPM and warranty
//!   curves),
//! * integer per-mechanism kill counts,
//! * order-invariant `f64` min/max.
//!
//! Every piece of state is merge-invariant: merging per-chunk accumulators
//! in any grouping yields bit-identical state to one accumulator fed every
//! chip, so the reduction order genuinely cannot matter. Memory is
//! O(bins), independent of fleet size.
//!
//! Quantile accuracy: bins are log-spaced at [`BINS_PER_DECADE`] per
//! decade over [`MIN_YEARS`, `MAX_YEARS`], so a reported quantile is exact
//! in rank and within a bin width (~2.3 %) in value, with deterministic
//! within-bin geometric interpolation and clamping to the exact observed
//! min/max.

use ramp_core::mechanisms::MechanismKind;
use ramp_units::Probability;
use serde::{Deserialize, Serialize};

/// Lower edge of the binned range (≈ 9 hours).
pub const MIN_YEARS: f64 = 1e-3;
/// Upper edge of the binned range (10 000 years; beyond it, overflow).
pub const MAX_YEARS: f64 = 1e4;
/// Log-resolution of the quantile bins.
pub const BINS_PER_DECADE: usize = 100;
/// Total number of finite bins (7 decades).
pub const BIN_COUNT: usize = 7 * BINS_PER_DECADE;
/// Warranty horizon: exact failure counts at years 1..=[`YEAR_MARKS`].
pub const YEAR_MARKS: usize = 30;

/// Streaming population accumulator. See the module docs for the
/// merge-invariance design.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationAccumulator {
    bins: Vec<u64>,
    below: u64,
    above: u64,
    total: u64,
    /// `year_buckets[i]` counts failures in years `(i, i+1]` (index 30
    /// collects everything past the warranty horizon).
    year_buckets: [u64; YEAR_MARKS + 1],
    killer_counts: [u64; MechanismKind::COUNT],
    min_years: f64,
    max_years: f64,
}

impl Default for PopulationAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl PopulationAccumulator {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        PopulationAccumulator {
            bins: vec![0; BIN_COUNT],
            below: 0,
            above: 0,
            total: 0,
            year_buckets: [0; YEAR_MARKS + 1],
            killer_counts: [0; MechanismKind::COUNT],
            min_years: f64::INFINITY,
            max_years: f64::NEG_INFINITY,
        }
    }

    /// The log-spaced bin index for a failure time, or `None` when it
    /// falls outside the binned range.
    fn bin_index(years: f64) -> Option<usize> {
        if !(MIN_YEARS..MAX_YEARS).contains(&years) {
            return None;
        }
        let idx = ((years / MIN_YEARS).log10() * BINS_PER_DECADE as f64) as usize;
        Some(idx.min(BIN_COUNT - 1))
    }

    /// The lower edge of bin `i`, in years.
    fn bin_lower(i: usize) -> f64 {
        MIN_YEARS * 10f64.powf(i as f64 / BINS_PER_DECADE as f64)
    }

    /// Records one chip.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite-negative failure time (`f64::MAX`, meaning
    /// "never fails", is accepted and lands in the overflow region).
    // ramp-lint:allow(unit-safety) -- year-denominated, documented in the name
    pub fn record(&mut self, failure_years: f64, killer: MechanismKind) {
        assert!(
            failure_years >= 0.0 && !failure_years.is_nan(),
            "failure time must be non-negative, got {failure_years}"
        );
        self.total += 1;
        // ramp-lint:allow(panic-reach) -- `MechanismKind::index()` is below the mechanism count by definition
        self.killer_counts[killer.index()] += 1;
        match Self::bin_index(failure_years) {
            Some(i) => self.bins[i] += 1, // ramp-lint:allow(panic-reach) -- `bin_index` only returns in-range bins
            None if failure_years < MIN_YEARS => self.below += 1,
            None => self.above += 1,
        }
        let year = failure_years.ceil().max(1.0);
        let bucket = if year > YEAR_MARKS as f64 {
            YEAR_MARKS
        } else {
            year as usize - 1
        };
        self.year_buckets[bucket] += 1; // ramp-lint:allow(panic-reach) -- `bin_index` only returns in-range bins
        self.min_years = self.min_years.min(failure_years);
        self.max_years = self.max_years.max(failure_years);
    }

    /// Merges another accumulator into this one. Associative and
    /// commutative over the full state, which is what makes chunked
    /// parallel reduction byte-identical to a serial pass.
    pub fn merge(&mut self, other: &PopulationAccumulator) {
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.below += other.below;
        self.above += other.above;
        self.total += other.total;
        for (a, b) in self.year_buckets.iter_mut().zip(&other.year_buckets) {
            *a += b;
        }
        for (a, b) in self.killer_counts.iter_mut().zip(&other.killer_counts) {
            *a += b;
        }
        self.min_years = self.min_years.min(other.min_years);
        self.max_years = self.max_years.max(other.max_years);
    }

    /// Number of recorded chips.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The earliest recorded failure, in years (`None` when empty).
    #[must_use]
    pub fn min_years(&self) -> Option<f64> {
        (self.total > 0).then_some(self.min_years)
    }

    /// The latest recorded failure, in years (`None` when empty).
    #[must_use]
    pub fn max_years(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max_years)
    }

    /// The `q`-quantile (`q` in `[0, 1]`) of the failure-time
    /// distribution, in years. Rank-exact; within the located bin the
    /// value is geometrically interpolated (log-linear, matching the bin
    /// spacing) and clamped to the exact observed min/max. Returns `None`
    /// when empty.
    #[must_use]
    // ramp-lint:allow(unit-safety) -- q is a dimensionless quantile level
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min_years);
        }
        // Rank-1 semantics: rank r means "the r-th smallest chip".
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut cumulative = self.below;
        let value = if rank <= cumulative {
            // All below-range chips are indistinguishable to the bins;
            // the exact observed min is the honest representative.
            self.min_years
        } else {
            let mut found = None;
            for (i, &n) in self.bins.iter().enumerate() {
                let before = cumulative;
                cumulative += n;
                if n > 0 && rank <= cumulative {
                    let lower = Self::bin_lower(i);
                    let upper = Self::bin_lower(i + 1);
                    // Geometric (log-linear) interpolation at the rank's
                    // position within the bin — deterministic: integers in,
                    // one expression out.
                    let frac = (rank - before) as f64 / n as f64;
                    found = Some(lower * (upper / lower).powf(frac));
                    break;
                }
            }
            found.unwrap_or(self.max_years)
        };
        Some(value.clamp(self.min_years, self.max_years))
    }

    /// Fraction of the population failed at or before `years` (whole
    /// years, clamped to the warranty horizon). Exact — computed from the
    /// integer year-mark counters, not the bins.
    #[must_use]
    pub fn failed_by_year(&self, years: usize) -> Probability {
        if self.total == 0 {
            return Probability::ZERO;
        }
        let years = years.min(YEAR_MARKS);
        // ramp-lint:allow(panic-reach) -- `years` is clamped to the bucket count above
        let failed: u64 = self.year_buckets[..years].iter().sum();
        Probability::from_counts(failed, self.total)
    }

    /// P(chip survives at least `years` whole years) — the complement of
    /// [`PopulationAccumulator::failed_by_year`].
    #[must_use]
    pub fn survival_at_year(&self, years: usize) -> Probability {
        self.failed_by_year(years).complement()
    }

    /// Defective parts per million at or before `years` whole years.
    #[must_use]
    // ramp-lint:allow(unit-safety) -- DPPM is the industry-standard dimensionless unit here
    pub fn dppm_at_year(&self, years: usize) -> f64 {
        self.failed_by_year(years).dppm()
    }

    /// Share of failures attributed to each mechanism, as exact counts.
    #[must_use]
    pub fn killer_counts(&self) -> [u64; MechanismKind::COUNT] {
        self.killer_counts
    }

    /// Renders the summary snapshot used by reports and the serve layer.
    #[must_use]
    pub fn summary(&self) -> PopulationSummary {
        let q = |level: f64| self.quantile(level).unwrap_or(0.0);
        PopulationSummary {
            chips: self.total,
            p1_years: q(0.01),
            p10_years: q(0.10),
            p50_years: q(0.50),
            p90_years: q(0.90),
            p99_years: q(0.99),
            min_years: self.min_years().unwrap_or(0.0),
            max_years: self.max_years().unwrap_or(0.0),
            dppm_by_year: (1..=YEAR_MARKS).map(|y| self.dppm_at_year(y)).collect(),
            killer_counts: self.killer_counts,
        }
    }
}

/// Serializable population summary: the canonical fleet output per node.
///
/// Every field derives deterministically from the accumulator's
/// merge-invariant state, so the JSON rendering of a summary is
/// byte-identical across thread counts and chunkings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationSummary {
    /// Number of simulated chips.
    pub chips: u64,
    /// 1st percentile of failure time (early-failure tail), years.
    pub p1_years: f64,
    /// 10th percentile of failure time, years.
    pub p10_years: f64,
    /// Median failure time, years.
    pub p50_years: f64,
    /// 90th percentile of failure time, years.
    pub p90_years: f64,
    /// 99th percentile of failure time, years.
    pub p99_years: f64,
    /// Earliest observed failure, years.
    pub min_years: f64,
    /// Latest observed failure, years.
    pub max_years: f64,
    /// Cumulative defective parts per million at years 1..=30.
    pub dppm_by_year: Vec<f64>,
    /// Failure counts per mechanism, in `MechanismKind::ALL` order.
    pub killer_counts: [u64; MechanismKind::COUNT],
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_uniform(acc: &mut PopulationAccumulator, n: u64) {
        // n chips failing at 1..=n years (shifted a touch off the integer
        // marks so bucket edges are unambiguous).
        for i in 0..n {
            acc.record(0.5 + i as f64, MechanismKind::Em);
        }
    }

    #[test]
    fn quantiles_are_rank_exact_within_bin_resolution() {
        let mut acc = PopulationAccumulator::new();
        record_uniform(&mut acc, 100);
        // The median chip is the 50th smallest: fails at 49.5 years.
        let p50 = acc.quantile(0.5).unwrap();
        assert!((p50 / 49.5 - 1.0).abs() < 0.03, "p50 {p50} vs exact 49.5");
        let p1 = acc.quantile(0.01).unwrap();
        assert!((p1 / 0.5 - 1.0).abs() < 0.03, "p1 {p1} vs exact 0.5");
        // q=0 clamps to the exact min, q=1 to the exact max.
        assert_eq!(acc.quantile(0.0).unwrap(), 0.5);
        assert_eq!(acc.quantile(1.0).unwrap(), 99.5);
    }

    #[test]
    fn merge_any_grouping_is_bit_identical() {
        let outcomes: Vec<f64> = (0..1000)
            .map(|i| 0.01 + (i as f64) * 0.037)
            .collect();
        let mut serial = PopulationAccumulator::new();
        for &y in &outcomes {
            serial.record(y, MechanismKind::Tddb);
        }
        for chunk_size in [1, 7, 100, 1000] {
            let mut merged = PopulationAccumulator::new();
            for chunk in outcomes.chunks(chunk_size) {
                let mut part = PopulationAccumulator::new();
                for &y in chunk {
                    part.record(y, MechanismKind::Tddb);
                }
                merged.merge(&part);
            }
            assert_eq!(merged, serial, "chunk size {chunk_size} diverged");
            assert_eq!(
                serde_json::to_string(&merged.summary()).unwrap(),
                serde_json::to_string(&serial.summary()).unwrap(),
            );
        }
    }

    #[test]
    fn year_marks_are_exact() {
        let mut acc = PopulationAccumulator::new();
        // 3 chips fail within year 1, 1 more within year 2, 6 survive 30+.
        for y in [0.2, 0.5, 1.0, 1.7] {
            acc.record(y, MechanismKind::Tc);
        }
        for _ in 0..6 {
            acc.record(500.0, MechanismKind::Sm);
        }
        assert_eq!(acc.dppm_at_year(1), 300_000.0);
        assert_eq!(acc.dppm_at_year(2), 400_000.0);
        assert_eq!(acc.dppm_at_year(30), 400_000.0);
        assert!((acc.survival_at_year(2).value() - 0.6).abs() < 1e-12);
        assert_eq!(acc.killer_counts()[MechanismKind::Tc.index()], 4);
        assert_eq!(acc.killer_counts()[MechanismKind::Sm.index()], 6);
    }

    #[test]
    fn out_of_range_failures_are_counted_not_lost() {
        let mut acc = PopulationAccumulator::new();
        acc.record(1e-6, MechanismKind::Em); // below the binned range
        acc.record(f64::MAX, MechanismKind::Sm); // "never fails"
        assert_eq!(acc.total(), 2);
        assert_eq!(acc.quantile(0.0).unwrap(), 1e-6);
        assert_eq!(acc.quantile(1.0).unwrap(), f64::MAX);
        assert_eq!(acc.dppm_at_year(1), 500_000.0);
    }

    #[test]
    fn empty_accumulator_reports_none() {
        let acc = PopulationAccumulator::new();
        assert_eq!(acc.quantile(0.5), None);
        assert_eq!(acc.min_years(), None);
        assert_eq!(acc.failed_by_year(10), Probability::ZERO);
    }
}
