//! Counter-based per-chip random streams.
//!
//! A fleet run must produce byte-identical output for any `RAMP_THREADS`
//! value and any chunking of the chip index space, so per-chip randomness
//! cannot come from a shared sequential stream (whose draw order would
//! depend on scheduling). Instead every chip owns an independent
//! [`ramp_trace::Rng`] seeded purely from `(fleet seed, node index, chip
//! index)`: a counter-based construction in the Philox/Threefry spirit,
//! with SplitMix64's finalizer as the mixing function. No global state, no
//! locks, no draw-order coupling between chips.

use ramp_trace::Rng;

/// SplitMix64's avalanche finalizer: every input bit affects every output
/// bit, so nearby `(seed, chip)` pairs produce statistically unrelated
/// streams.
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The independent random stream for one chip of one node's population.
///
/// Pure function of its arguments: chip 7 gets the same stream whether it
/// is simulated first or last, alone or in a chunk, on 1 thread or 64.
#[must_use]
pub fn chip_rng(seed: u64, node_index: u64, chip_index: u64) -> Rng {
    let mut h = seed;
    h = mix64(h ^ node_index.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
    h = mix64(h ^ chip_index.wrapping_mul(0xC2B2_AE3D_27D4_EB4F).wrapping_add(2));
    Rng::seed_from(h)
}

/// A uniform draw from the *open* interval `(0, 1)`.
///
/// [`Rng::next_f64`] can return exactly 0, which would make an inverse-CDF
/// transform produce `-inf` (normal) or a zero lifetime (Weibull). Placing
/// the 53-bit integer at half-steps keeps both endpoints strictly
/// excluded.
#[must_use]
pub fn open_unit(rng: &mut Rng) -> f64 {
    ((rng.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_streams_are_reproducible_and_independent() {
        let mut a = chip_rng(42, 0, 7);
        let mut b = chip_rng(42, 0, 7);
        assert_eq!(a.next_u64(), b.next_u64());
        // Neighbouring chips, neighbouring nodes, and different seeds all
        // diverge immediately.
        assert_ne!(chip_rng(42, 0, 7).next_u64(), chip_rng(42, 0, 8).next_u64());
        assert_ne!(chip_rng(42, 0, 7).next_u64(), chip_rng(42, 1, 7).next_u64());
        assert_ne!(chip_rng(42, 0, 7).next_u64(), chip_rng(43, 0, 7).next_u64());
    }

    #[test]
    fn open_unit_stays_strictly_inside_the_interval() {
        let mut rng = chip_rng(1, 0, 0);
        for _ in 0..100_000 {
            let u = open_unit(&mut rng);
            assert!(u > 0.0 && u < 1.0, "draw {u} escaped (0,1)");
        }
    }

    #[test]
    fn mix64_scrambles_common_inputs() {
        // 0 is the finalizer's one fixed point; `chip_rng` never feeds it
        // a raw 0 (the +1/+2 offsets see to that).
        assert_eq!(mix64(0), 0);
        for v in [1u64, 2, 42, u64::MAX] {
            assert_ne!(mix64(v), v);
        }
    }
}
