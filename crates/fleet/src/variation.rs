//! Per-chip process-variation model.
//!
//! Three physical knobs move per chip, each a truncated-normal draw so no
//! tail sample can leave the physical regime:
//!
//! * **gate-oxide thickness** — a multiplicative factor on the node's
//!   `t_ox`. Thinner oxide accelerates TDDB exponentially (one decade of
//!   lifetime per ~0.55 nm on the calibrated model), making this the
//!   highest-leverage variation source.
//! * **operating temperature** — an additive per-chip offset in Kelvin,
//!   standing in for the V_th/leakage spread: a leaky chip runs hotter at
//!   the same workload, accelerating every Arrhenius mechanism and
//!   widening its thermal-cycling swing.
//! * **interconnect geometry** — a multiplicative factor on the node's
//!   cumulative scale factor κ; thinner wires raise electromigration
//!   current-density stress via the κ^{-g} term.
//!
//! On top of the parametric variation, each mechanism's lifetime is a
//! distribution even for identical parameters (grain structure, local
//! defects): [`VariationModel::lifetime_sigma`] sets the log-domain
//! scatter of the EM/SM/TDDB lognormals and
//! [`VariationModel::tc_shape`] the Weibull slope of thermal cycling.

use crate::sampler::TruncatedNormal;
use ramp_trace::Rng;
use ramp_units::{Sigma, WeibullShape};
use serde::{Deserialize, Serialize};

/// Truncation half-width for all process draws, in sigmas.
pub const TRUNCATION_SIGMAS: f64 = 3.0;

/// Fleet-wide distribution parameters for per-chip variation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// Fractional sigma of the gate-oxide thickness factor (ITRS-class
    /// within-wafer control: ~2 %).
    pub tox_fraction_sigma: Sigma,
    /// Sigma of the per-chip operating-temperature offset, in Kelvin.
    pub temperature_sigma_kelvin: Sigma,
    /// Fractional sigma of the interconnect geometry (κ) factor.
    pub geometry_fraction_sigma: Sigma,
    /// Log-domain sigma of the EM/SM/TDDB lifetime lognormals (JEDEC-
    /// typical wearout scatter).
    pub lifetime_sigma: Sigma,
    /// Weibull slope of the thermal-cycling lifetime (β > 1: wearout).
    pub tc_shape: WeibullShape,
}

impl Default for VariationModel {
    fn default() -> Self {
        VariationModel {
            tox_fraction_sigma: Sigma::new(0.02).expect("static constant"), // ramp-lint:allow(panic-hygiene) -- static constant is valid by construction
            temperature_sigma_kelvin: Sigma::new(3.0).expect("static constant"), // ramp-lint:allow(panic-hygiene) -- static constant is valid by construction
            geometry_fraction_sigma: Sigma::new(0.03).expect("static constant"), // ramp-lint:allow(panic-hygiene) -- static constant is valid by construction
            lifetime_sigma: Sigma::new(0.5).expect("static constant"), // ramp-lint:allow(panic-hygiene) -- static constant is valid by construction
            tc_shape: WeibullShape::new(2.0).expect("static constant"), // ramp-lint:allow(panic-hygiene) -- static constant is valid by construction
        }
    }
}

impl VariationModel {
    /// A model with all process variation and lifetime scatter switched
    /// off: every chip is the paper's average chip. Useful as a test
    /// baseline — the population's every quantile must then collapse onto
    /// deterministic per-mechanism lifetimes.
    #[must_use]
    pub fn degenerate() -> Self {
        VariationModel {
            tox_fraction_sigma: Sigma::ZERO,
            temperature_sigma_kelvin: Sigma::ZERO,
            geometry_fraction_sigma: Sigma::ZERO,
            lifetime_sigma: Sigma::ZERO,
            tc_shape: WeibullShape::new(1e6).expect("static constant"), // ramp-lint:allow(panic-hygiene) -- static constant is valid by construction
        }
    }
}

/// One chip's sampled process parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipVariation {
    /// Multiplicative factor on the node's gate-oxide thickness.
    pub tox_factor: f64,
    /// Additive offset on every structure's average temperature (K).
    pub temperature_offset_kelvin: f64,
    /// Multiplicative factor on the node's cumulative scale factor κ.
    pub geometry_factor: f64,
}

impl ChipVariation {
    /// Draws one chip's variation. Consumes the stream in a fixed order
    /// (t_ox, temperature, geometry) so the draw layout is part of the
    /// fleet's determinism contract.
    #[must_use]
    pub fn sample(model: &VariationModel, rng: &mut Rng) -> ChipVariation {
        let factor = |sigma: Sigma, rng: &mut Rng| {
            // A multiplicative factor can never reach 0 inside a ±3σ
            // window for any sane sigma, but the floor makes the
            // guarantee unconditional.
            TruncatedNormal::symmetric(1.0, sigma, TRUNCATION_SIGMAS)
                .sample(rng)
                .max(0.05)
        };
        let tox_factor = factor(model.tox_fraction_sigma, rng);
        let temperature_offset_kelvin =
            TruncatedNormal::symmetric(0.0, model.temperature_sigma_kelvin, TRUNCATION_SIGMAS)
                .sample(rng);
        let geometry_factor = factor(model.geometry_fraction_sigma, rng);
        ChipVariation {
            tox_factor,
            temperature_offset_kelvin,
            geometry_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::chip_rng;

    #[test]
    fn draws_respect_truncation_windows() {
        let model = VariationModel::default();
        for chip in 0..10_000 {
            let mut rng = chip_rng(3, 0, chip);
            let v = ChipVariation::sample(&model, &mut rng);
            assert!((v.tox_factor - 1.0).abs() <= 3.0 * 0.02 + 1e-12);
            assert!(v.temperature_offset_kelvin.abs() <= 9.0 + 1e-12);
            assert!((v.geometry_factor - 1.0).abs() <= 3.0 * 0.03 + 1e-12);
        }
    }

    #[test]
    fn degenerate_model_produces_the_average_chip() {
        let model = VariationModel::degenerate();
        let mut rng = chip_rng(4, 0, 0);
        let v = ChipVariation::sample(&model, &mut rng);
        assert_eq!(v.tox_factor, 1.0);
        assert_eq!(v.temperature_offset_kelvin, 0.0);
        assert_eq!(v.geometry_factor, 1.0);
    }
}
