//! The fleet runner: anchors, fans out, reduces, reports.
//!
//! [`run_fleet`] evaluates one [`ramp_core::PopulationAnchor`] per
//! requested node (the only pipeline-priced work), then simulates the
//! chip population in fixed-size chunks on the shared deterministic
//! [`ramp_core::Executor`]. Each chunk builds a private
//! [`PopulationAccumulator`]; the partials come back in input order and
//! merge left-to-right. Because every chip's randomness is a pure
//! function of `(seed, node, chip index)` and the merged state is
//! integer-only, the canonical output is byte-identical for any
//! `RAMP_THREADS` value and any chunk size.

use crate::accumulator::{PopulationAccumulator, PopulationSummary};
use crate::chip::ChipSampler;
use crate::rng::chip_rng;
use crate::variation::VariationModel;
use ramp_core::{fnv1a_hex, Executor, NodeId, QueryEngine, RampError};
use serde::{Deserialize, Serialize};

/// Configuration of one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Benchmark whose anchor the population perturbs.
    pub benchmark: String,
    /// Nodes to simulate a population at.
    pub nodes: Vec<NodeId>,
    /// Chips per node.
    pub chips: u64,
    /// Master seed; combined with node and chip indices counter-style.
    pub seed: u64,
    /// Chips per executor task. Any value produces identical output; it
    /// only tunes scheduling granularity.
    pub chunk: u64,
    /// Worker threads: `Some(n)` forces `n`, `None` follows
    /// `RAMP_THREADS`.
    pub threads: Option<usize>,
    /// Process-variation and lifetime-scatter parameters.
    pub variation: VariationModel,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            benchmark: "gzip".to_string(),
            nodes: NodeId::ALL.to_vec(),
            chips: 1_000_000,
            seed: 42,
            chunk: 8192,
            threads: None,
            variation: VariationModel::default(),
        }
    }
}

/// One node's population result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodePopulation {
    /// The simulated node.
    pub node: NodeId,
    /// Human-readable node label (Table-4 style).
    pub label: String,
    /// The anchor's cache key (pins calibration + query content).
    pub anchor_key: String,
    /// Merged population statistics.
    pub summary: PopulationSummary,
}

/// The full result of a fleet run.
///
/// The population content (everything except the wall-clock throughput
/// figures) is the determinism surface: [`FleetResults::population_json`]
/// renders exactly that content, and [`FleetResults::population_digest`]
/// pins it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetResults {
    /// Benchmark the populations were anchored on.
    pub benchmark: String,
    /// Master seed.
    pub seed: u64,
    /// Chips per node.
    pub chips_per_node: u64,
    /// Per-node populations, in request order.
    pub populations: Vec<NodePopulation>,
    /// Measured simulation throughput (chips/second, all nodes pooled).
    /// Wall-clock derived — excluded from the canonical output.
    pub chips_per_sec: f64,
    /// Total simulation wall-clock, seconds. Excluded from the canonical
    /// output.
    pub elapsed_seconds: f64,
}

/// The deterministic subset of [`FleetResults`] (no wall-clock fields).
/// Owned because the vendored serde derive does not support borrowed
/// fields; the clone is a handful of small vectors per call.
#[derive(Serialize)]
struct CanonicalFleet {
    benchmark: String,
    seed: u64,
    chips_per_node: u64,
    populations: Vec<NodePopulation>,
}

impl FleetResults {
    /// Canonical JSON of the population content — the byte-identity
    /// surface the determinism tests and `--assert-deterministic` compare.
    #[must_use]
    pub fn population_json(&self) -> String {
        serde_json::to_string_pretty(&CanonicalFleet {
            benchmark: self.benchmark.clone(),
            seed: self.seed,
            chips_per_node: self.chips_per_node,
            populations: self.populations.clone(),
        })
        .expect("fleet results are plain data, always serializable") // ramp-lint:allow(panic-hygiene) -- schema has no fallible serialize cases
    }

    /// FNV-1a digest of [`FleetResults::population_json`].
    #[must_use]
    pub fn population_digest(&self) -> String {
        fnv1a_hex(&self.population_json())
    }

    /// Warranty-return curves as CSV: one row per (node, year) with the
    /// cumulative failure fraction in DPPM.
    #[must_use]
    pub fn warranty_csv(&self) -> String {
        let mut out = String::from("node,year,cumulative_dppm\n");
        for pop in &self.populations {
            for (i, dppm) in pop.summary.dppm_by_year.iter().enumerate() {
                out.push_str(&format!("{},{},{:.1}\n", pop.label, i + 1, dppm));
            }
        }
        out
    }
}

/// Runs a full fleet simulation. See the module docs for the determinism
/// argument.
///
/// # Errors
///
/// Returns [`RampError::InvalidConfiguration`] for an empty node list or
/// zero chips, and propagates any anchor (pipeline) error.
pub fn run_fleet(engine: &QueryEngine, config: &FleetConfig) -> Result<FleetResults, RampError> {
    if config.nodes.is_empty() {
        return Err(RampError::InvalidConfiguration(
            "fleet needs at least one node".into(),
        ));
    }
    if config.chips == 0 {
        return Err(RampError::InvalidConfiguration(
            "fleet needs at least one chip".into(),
        ));
    }
    let executor = match config.threads {
        Some(n) => Executor::new(n),
        None => Executor::from_env(),
    };
    // Root a causal trace on the fleet parameters when nobody upstream
    // (e.g. the serve dispatcher) carries one already. Purely
    // content-derived, so reruns of the same config share a trace id.
    let _trace = ramp_obs::adopt_trace(
        if ramp_obs::tracing_enabled() && ramp_obs::current_trace().is_none() {
            Some(ramp_obs::trace_root(&format!(
                "fleet|{}|{}|{}",
                config.benchmark, config.seed, config.chips
            )))
        } else {
            None
        },
    );
    let span = ramp_obs::span!(
        "fleet_run",
        "benchmark={} nodes={} chips={} threads={}",
        config.benchmark,
        config.nodes.len(),
        config.chips,
        executor.threads()
    );
    let chips_counter = ramp_obs::counter("fleet.chips_simulated");
    let chunk = config.chunk.max(1);
    // Wall-clock feeds only chips_per_sec/elapsed_seconds, which live
    // outside the canonical population surface (see `population_json`).
    let started = std::time::Instant::now(); // ramp-lint:allow(determinism) -- throughput telemetry only, never in canonical output
    let mut populations = Vec::with_capacity(config.nodes.len());
    for (node_index, &node) in config.nodes.iter().enumerate() {
        let node_span = ramp_obs::span!("fleet_node", "node={}", node);
        let query = engine.query(&config.benchmark, node)?;
        let anchor = engine.population_anchor(&query)?;
        let sampler = ChipSampler::new(&anchor, config.variation);
        let chunks: Vec<(u64, u64)> = (0..config.chips)
            .step_by(usize::try_from(chunk).unwrap_or(usize::MAX).max(1))
            .map(|start| (start, chunk.min(config.chips - start)))
            .collect();
        let partials: Vec<PopulationAccumulator> =
            executor.map(&chunks, |&(start, count)| {
                let chunk_span =
                    ramp_obs::span!("fleet_chunk", "start={start} count={count}");
                let mut acc = PopulationAccumulator::new();
                for chip in start..start + count {
                    let mut rng = chip_rng(config.seed, node_index as u64, chip);
                    let outcome = sampler.sample_chip(&mut rng);
                    acc.record(outcome.failure_years, outcome.killer);
                }
                chunk_span.finish();
                acc
            });
        let mut merged = PopulationAccumulator::new();
        for part in &partials {
            merged.merge(part);
        }
        chips_counter.add(config.chips);
        populations.push(NodePopulation {
            node,
            label: node.to_string(),
            anchor_key: anchor.cache_key,
            summary: merged.summary(),
        });
        node_span.finish();
    }
    let elapsed = started.elapsed().as_secs_f64();
    let simulated = config.chips * config.nodes.len() as u64;
    let chips_per_sec = if elapsed > 0.0 {
        simulated as f64 / elapsed
    } else {
        0.0
    };
    ramp_obs::gauge("fleet.chips_per_sec").set(chips_per_sec);
    span.finish();
    Ok(FleetResults {
        benchmark: config.benchmark.clone(),
        seed: config.seed,
        chips_per_node: config.chips,
        populations,
        chips_per_sec,
        elapsed_seconds: elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramp_core::mechanisms::PerMechanism;
    use ramp_core::{PipelineConfig, Qualification};

    fn test_engine() -> QueryEngine {
        QueryEngine::with_qualification(
            Qualification::from_constants(PerMechanism::from_fn(|_| 1.0)).unwrap(),
            PipelineConfig::quick(),
            "population-tests",
        )
    }

    fn small_config() -> FleetConfig {
        FleetConfig {
            nodes: vec![NodeId::N180, NodeId::N65HighV],
            chips: 2000,
            chunk: 256,
            threads: Some(2),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn rejects_degenerate_configs() {
        let engine = test_engine();
        let empty_nodes = FleetConfig {
            nodes: vec![],
            ..small_config()
        };
        assert!(matches!(
            run_fleet(&engine, &empty_nodes),
            Err(RampError::InvalidConfiguration(_))
        ));
        let no_chips = FleetConfig {
            chips: 0,
            ..small_config()
        };
        assert!(matches!(
            run_fleet(&engine, &no_chips),
            Err(RampError::InvalidConfiguration(_))
        ));
    }

    #[test]
    fn reruns_are_byte_identical_and_chunking_free() {
        let engine = test_engine();
        let base = run_fleet(&engine, &small_config()).unwrap();
        let rerun = run_fleet(&engine, &small_config()).unwrap();
        assert_eq!(base.population_json(), rerun.population_json());
        for (threads, chunk) in [(1, 37), (4, 2000), (3, 1)] {
            let varied = run_fleet(
                &engine,
                &FleetConfig {
                    threads: Some(threads),
                    chunk,
                    ..small_config()
                },
            )
            .unwrap();
            assert_eq!(
                base.population_json(),
                varied.population_json(),
                "threads={threads} chunk={chunk} diverged"
            );
        }
    }

    #[test]
    fn seed_changes_the_population() {
        let engine = test_engine();
        let a = run_fleet(&engine, &small_config()).unwrap();
        let b = run_fleet(
            &engine,
            &FleetConfig {
                seed: 43,
                ..small_config()
            },
        )
        .unwrap();
        assert_ne!(a.population_json(), b.population_json());
        assert_ne!(a.population_digest(), b.population_digest());
    }

    #[test]
    fn populations_are_complete_and_ordered() {
        let engine = test_engine();
        let results = run_fleet(&engine, &small_config()).unwrap();
        assert_eq!(results.populations.len(), 2);
        assert_eq!(results.populations[0].node, NodeId::N180);
        assert_eq!(results.populations[1].node, NodeId::N65HighV);
        for pop in &results.populations {
            assert_eq!(pop.summary.chips, 2000);
            let killed: u64 = pop.summary.killer_counts.iter().sum();
            assert_eq!(killed, 2000, "every chip has exactly one killer");
            assert!(pop.summary.p1_years <= pop.summary.p50_years);
            assert!(pop.summary.p50_years <= pop.summary.p99_years);
        }
        assert!(results.chips_per_sec > 0.0);
        let csv = results.warranty_csv();
        assert_eq!(csv.lines().count(), 1 + 2 * 30);
        assert!(csv.starts_with("node,year,cumulative_dppm\n"));
    }
}
