//! Lifetime and process-variation samplers.
//!
//! Three distribution families cover the fleet's needs:
//!
//! * [`Lognormal`] — the standard wearout lifetime model for EM, SM, and
//!   TDDB (JEDEC JEP122: log-domain scatter around a median life);
//! * [`TruncatedNormal`] — per-chip process-variation multipliers
//!   (t_ox, geometry) and additive offsets (temperature), truncated so a
//!   tail draw can never produce an unphysical parameter;
//! * [`CoffinManson`] — thermal-cycling fatigue life: Weibull-distributed
//!   draws around a characteristic life that follows the Coffin–Manson
//!   power law in the temperature swing ΔT.
//!
//! All samplers consume randomness exclusively through a caller-provided
//! [`ramp_trace::Rng`], so a chip's draws depend only on its own stream.

use crate::rng::open_unit;
use ramp_trace::Rng;
use ramp_units::{Sigma, WeibullShape};

/// Inverse of the standard normal CDF (the probit function), evaluated
/// with Acklam's rational approximation (relative error < 1.15e-9 over
/// the open unit interval — far below the Monte Carlo noise floor of any
/// feasible fleet size).
///
/// # Panics
///
/// Panics if `p` is outside the open interval `(0, 1)`; draws from
/// [`crate::rng::open_unit`] never are.
#[must_use]
// ramp-lint:allow(unit-safety) -- probability in, standard-normal deviate out; both dimensionless
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit argument {p} outside (0,1)");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        // ramp-lint:allow(panic-reach) -- constant indices into a fixed-size coefficient array
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0) // ramp-lint:allow(panic-reach) -- constant indices into a fixed-size coefficient array
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q // ramp-lint:allow(panic-reach) -- constant indices into a fixed-size coefficient array
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5]) // ramp-lint:allow(panic-reach) -- constant indices into a fixed-size coefficient array
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// One standard-normal deviate via inverse-CDF transform (exactly one
/// `u64` of the stream per draw, which keeps per-chip draw budgets fixed).
#[must_use]
// ramp-lint:allow(unit-safety) -- standard-normal deviate is dimensionless
pub fn standard_normal(rng: &mut Rng) -> f64 {
    inverse_normal_cdf(open_unit(rng))
}

/// A lognormal distribution parameterised by its median and log-domain
/// sigma.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lognormal {
    ln_median: f64,
    sigma: Sigma,
}

impl Lognormal {
    /// From a median and log-sigma.
    ///
    /// # Panics
    ///
    /// Panics if `median` is not finite and positive.
    #[must_use]
    // ramp-lint:allow(unit-safety) -- median carries the caller's unit; sampler is unit-agnostic
    pub fn from_median(median: f64, sigma: Sigma) -> Self {
        assert!(
            median.is_finite() && median > 0.0,
            "lognormal median must be positive, got {median}"
        );
        Lognormal {
            ln_median: median.ln(),
            sigma,
        }
    }

    /// Mean-preserving construction: picks the median so that the
    /// distribution's *mean* equals `mean` (`median = mean·e^{−σ²/2}`).
    /// This is the right anchoring for FIT-derived lifetimes: the
    /// qualified FIT fixes the expected failure rate, i.e. the mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    #[must_use]
    // ramp-lint:allow(unit-safety) -- mean carries the caller's unit; sampler is unit-agnostic
    pub fn from_mean(mean: f64, sigma: Sigma) -> Self {
        let s = sigma.value();
        Lognormal::from_median(mean * (-0.5 * s * s).exp(), sigma)
    }

    /// The distribution's median.
    #[must_use]
    // ramp-lint:allow(unit-safety) -- returns the caller's unit
    pub fn median(&self) -> f64 {
        self.ln_median.exp()
    }

    /// The distribution's mean.
    #[must_use]
    // ramp-lint:allow(unit-safety) -- returns the caller's unit
    pub fn mean(&self) -> f64 {
        let s = self.sigma.value();
        (self.ln_median + 0.5 * s * s).exp()
    }

    /// One draw. Strictly positive by construction.
    #[must_use]
    // ramp-lint:allow(unit-safety) -- returns the caller's unit
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        (self.ln_median + self.sigma.value() * standard_normal(rng)).exp()
    }
}

/// A normal distribution truncated to `[lo, hi]`.
///
/// Sampled by rejection (deterministic per stream: the same seed always
/// rejects the same draws); after 64 consecutive rejections — impossible
/// in practice for the ±3σ windows the fleet uses, but reachable with a
/// pathological window — the draw clamps to the nearer bound so sampling
/// always terminates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    mean: f64,
    sigma: Sigma,
    lo: f64,
    hi: f64,
}

impl TruncatedNormal {
    /// Maximum rejection attempts before clamping.
    const MAX_REJECTS: u32 = 64;

    /// A normal with the given mean/sigma truncated to `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo <= mean <= hi` (the window must contain the
    /// mean, otherwise rejection is hopeless and the model is misspecified
    /// anyway).
    #[must_use]
    // ramp-lint:allow(unit-safety) -- mean/bounds carry the caller's unit; sampler is unit-agnostic
    pub fn new(mean: f64, sigma: Sigma, lo: f64, hi: f64) -> Self {
        assert!(
            lo <= mean && mean <= hi,
            "truncation window [{lo}, {hi}] must contain the mean {mean}"
        );
        TruncatedNormal { mean, sigma, lo, hi }
    }

    /// The symmetric ±`k`σ window around `mean`.
    #[must_use]
    // ramp-lint:allow(unit-safety) -- mean carries the caller's unit; k is a dimensionless multiple
    pub fn symmetric(mean: f64, sigma: Sigma, k: f64) -> Self {
        let half = k * sigma.value();
        TruncatedNormal::new(mean, sigma, mean - half, mean + half)
    }

    /// Lower truncation bound.
    #[must_use]
    // ramp-lint:allow(unit-safety) -- returns the caller's unit
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper truncation bound.
    #[must_use]
    // ramp-lint:allow(unit-safety) -- returns the caller's unit
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// One draw, always inside `[lo, hi]`.
    #[must_use]
    // ramp-lint:allow(unit-safety) -- returns the caller's unit
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        for _ in 0..Self::MAX_REJECTS {
            let v = self.mean + self.sigma.value() * standard_normal(rng);
            if v >= self.lo && v <= self.hi {
                return v;
            }
        }
        self.mean.clamp(self.lo, self.hi)
    }
}

/// Γ(x) for x > 0 via the Lanczos approximation (g = 7, n = 9); relative
/// error ~1e-13 in the x ∈ (1, 2] range the Weibull mean needs.
#[must_use]
// ramp-lint:allow(unit-safety) -- pure math on dimensionless arguments
pub fn gamma_fn(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "gamma_fn domain is x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula keeps the Lanczos series in its happy range.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        // ramp-lint:allow(panic-reach) -- constant indices into a fixed-size coefficient array
        let mut a = COEF[0];
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        let t = x + G + 0.5;
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// Thermal-cycling (Coffin–Manson) fatigue-life sampler.
///
/// The Coffin–Manson law fixes the *characteristic* (mean) life as a
/// power of the thermal swing, `N_f ∝ ΔT^{−q}`; around it, cycles-to-
/// failure scatter follows a Weibull with wearout slope β > 1. Draws are
/// by inversion, `t = scale · (−ln(1−u))^{1/β}` with `u ∈ (0, 1)` open,
/// so every draw is finite and strictly positive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoffinManson {
    scale_years: f64,
    shape: WeibullShape,
}

impl CoffinManson {
    /// Sampler whose *mean* lifetime is `mean_years`
    /// (`scale = mean / Γ(1 + 1/β)`).
    ///
    /// # Panics
    ///
    /// Panics if `mean_years` is not finite and positive.
    #[must_use]
    // ramp-lint:allow(unit-safety) -- year-denominated mean documented in the name
    pub fn from_mean_years(mean_years: f64, shape: WeibullShape) -> Self {
        assert!(
            mean_years.is_finite() && mean_years > 0.0,
            "Coffin–Manson mean life must be positive, got {mean_years}"
        );
        CoffinManson {
            scale_years: mean_years / gamma_fn(1.0 + 1.0 / shape.value()),
            shape,
        }
    }

    /// The Coffin–Manson mean life at swing `delta_t`, transferred from a
    /// known mean at a reference swing: `mean · (ΔT_ref / ΔT)^{exponent}`.
    /// Strictly decreasing in `delta_t` — hotter cycling fails sooner.
    ///
    /// # Panics
    ///
    /// Panics unless both swings are positive.
    #[must_use]
    // ramp-lint:allow(unit-safety) -- Kelvin swings documented in the names; returns years
    pub fn mean_years_at_swing(
        reference_mean_years: f64,
        reference_delta_t: f64,
        delta_t: f64,
        exponent: f64,
    ) -> f64 {
        assert!(
            reference_delta_t > 0.0 && delta_t > 0.0,
            "Coffin–Manson swings must be positive"
        );
        reference_mean_years * (reference_delta_t / delta_t).powf(exponent)
    }

    /// The Weibull scale (characteristic life), in years.
    #[must_use]
    // ramp-lint:allow(unit-safety) -- year-denominated, documented in the name
    pub fn scale_years(&self) -> f64 {
        self.scale_years
    }

    /// One lifetime draw in years. Strictly positive and finite.
    #[must_use]
    // ramp-lint:allow(unit-safety) -- year-denominated, documented in the name
    pub fn sample_years(&self, rng: &mut Rng) -> f64 {
        let u = open_unit(rng);
        self.scale_years * (-(1.0 - u).ln()).powf(1.0 / self.shape.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::chip_rng;

    #[test]
    fn probit_hits_known_quantiles() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959_964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959_964).abs() < 1e-4);
        // Symmetry deep in the tails.
        assert!((inverse_normal_cdf(1e-6) + inverse_normal_cdf(1.0 - 1e-6)).abs() < 1e-6);
    }

    #[test]
    fn gamma_matches_known_values() {
        assert!((gamma_fn(1.0) - 1.0).abs() < 1e-12);
        assert!((gamma_fn(2.0) - 1.0).abs() < 1e-12);
        assert!((gamma_fn(5.0) - 24.0).abs() < 1e-9);
        assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
        // Γ(1.5) = √π/2, the value the default Weibull shape exercises.
        assert!((gamma_fn(1.5) - std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-10);
    }

    #[test]
    fn lognormal_mean_anchoring_is_exact() {
        let sigma = Sigma::new(0.7).unwrap();
        let d = Lognormal::from_mean(28.5, sigma);
        assert!((d.mean() - 28.5).abs() < 1e-9);
        assert!(d.median() < d.mean(), "lognormal median sits below the mean");
    }

    #[test]
    fn truncated_normal_clamps_after_max_rejects() {
        // A window that excludes virtually all probability mass still
        // terminates, at the clamped mean.
        let tn = TruncatedNormal::new(0.0, Sigma::new(1.0).unwrap(), -1e-12, 1e-12);
        let mut rng = chip_rng(9, 0, 0);
        let v = tn.sample(&mut rng);
        assert!(v.abs() <= 1e-12);
    }

    #[test]
    fn coffin_manson_mean_transfer_is_monotone() {
        let base = CoffinManson::mean_years_at_swing(30.0, 40.0, 40.0, 2.35);
        assert!((base - 30.0).abs() < 1e-12);
        let hotter = CoffinManson::mean_years_at_swing(30.0, 40.0, 60.0, 2.35);
        let cooler = CoffinManson::mean_years_at_swing(30.0, 40.0, 20.0, 2.35);
        assert!(hotter < base && base < cooler);
    }
}
