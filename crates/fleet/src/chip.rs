//! Per-chip reliability evaluation by ratio transfer.
//!
//! A full pipeline run (timing → power → thermal → rates) per chip would
//! cap the fleet at a few chips per second. Instead the fleet runs the
//! pipeline **once** per (benchmark, node) — the
//! [`ramp_core::PopulationAnchor`] — and re-prices each sampled chip by
//! *rate ratio transfer*: for every (mechanism, structure) cell, the
//! anchored qualified FIT is scaled by the ratio of the mechanism's
//! analytic rate at the chip's perturbed parameters to the rate at the
//! anchor's parameters, both evaluated at the structure's time-average
//! operating point. The transfer is exact for parameter changes whose
//! rate effect is multiplicative and temperature-independent (t_ox,
//! geometry) and first-order accurate for the per-chip temperature
//! offset (it shifts the whole profile rather than re-solving thermals);
//! with offsets of a few Kelvin the induced error is far below the
//! lifetime scatter being modelled.
//!
//! Per-chip cost: 3 variation draws + 28 closed-form rate evaluations +
//! 4 lifetime draws — about a microsecond, which is what makes
//! million-chip fleets routine.

use crate::sampler::{CoffinManson, Lognormal};
use crate::variation::{ChipVariation, VariationModel};
use ramp_core::mechanisms::{standard_models, FailureModel, MechanismKind, PerMechanism};
use ramp_core::{OperatingPoint, PopulationAnchor, TechNode};
use ramp_microarch::{PerStructure, Structure};
use ramp_trace::Rng;
use ramp_units::{ActivityFactor, Angstroms, Kelvin};

/// Hours in a (Julian) year, matching `ramp_units::Mttf::years`.
const HOURS_PER_YEAR: f64 = 24.0 * 365.25;

/// Representative activity for rate evaluation. The choice cancels out of
/// every rate ratio (activity enters only EM's `J = p·J_max`, identically
/// in numerator and denominator), so any interior value works; 0.5 keeps
/// clear of the idle floor in `CurrentDensity::at_activity`.
const REFERENCE_ACTIVITY: f64 = 0.5;

/// The outcome of one simulated chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipOutcome {
    /// Years until the chip's first mechanism failure (series system).
    pub failure_years: f64,
    /// The mechanism that failed first.
    pub killer: MechanismKind,
}

/// A reusable per-(benchmark, node) chip evaluator.
///
/// Construction precomputes the anchor's per-structure operating points,
/// the base analytic rates, and the base qualified FITs; after that,
/// [`ChipSampler::sample_chip`] is allocation-free.
#[derive(Debug)]
pub struct ChipSampler {
    node: TechNode,
    variation: VariationModel,
    models: Vec<Box<dyn FailureModel>>,
    base_ops: PerStructure<OperatingPoint>,
    base_rate: PerMechanism<PerStructure<f64>>,
    base_fit: PerMechanism<PerStructure<f64>>,
}

impl ChipSampler {
    /// Builds the evaluator for one anchor under one variation model.
    #[must_use]
    pub fn new(anchor: &PopulationAnchor, variation: VariationModel) -> Self {
        let models = standard_models();
        let activity = ActivityFactor::new(REFERENCE_ACTIVITY)
            .expect("static constant is a valid activity"); // ramp-lint:allow(panic-hygiene) -- static constant is valid by construction
        let base_ops = PerStructure::from_fn(|s| {
            OperatingPoint::new(
                // ramp-lint:allow(panic-reach) -- enum-indexed `PerStructure` is total
                anchor.rates.average_temperature()[s],
                anchor.node.vdd,
                activity,
            )
        });
        let base_rate = PerMechanism::from_fn(|m| {
            let model = models
                .iter()
                .find(|mo| mo.kind() == m)
                .expect("standard model set covers every mechanism"); // ramp-lint:allow(panic-hygiene) -- standard_models() is total over MechanismKind
            PerStructure::from_fn(|s| model.relative_rate(&base_ops[s], &anchor.node))
        });
        let base_fit =
            PerMechanism::from_fn(|m| PerStructure::from_fn(|s| anchor.report.fit(m, s).value()));
        ChipSampler {
            node: anchor.node,
            variation,
            models,
            base_ops,
            base_rate,
            base_fit,
        }
    }

    /// The variation model in force.
    #[must_use]
    pub fn variation(&self) -> &VariationModel {
        &self.variation
    }

    /// The perturbed copy of the node for one chip's process draw.
    fn perturbed_node(&self, v: &ChipVariation) -> TechNode {
        let mut node = self.node;
        node.tox = Angstroms::new(self.node.tox.value() * v.tox_factor)
            .unwrap_or(self.node.tox);
        node.scale_factor = self.node.scale_factor * v.geometry_factor;
        node
    }

    /// This chip's expected (mean) lifetime for one mechanism, in years:
    /// base FIT per cell × rate ratio, summed over structures (SOFR), then
    /// FIT → MTTF.
    fn mechanism_mean_years(
        &self,
        m: MechanismKind,
        chip_node: &TechNode,
        temp_offset: f64,
    ) -> f64 {
        let model = self
            .models
            .iter()
            .find(|mo| mo.kind() == m)
            .expect("standard model set covers every mechanism"); // ramp-lint:allow(panic-hygiene) -- standard_models() is total over MechanismKind
        let mut chip_fit = 0.0;
        for s in Structure::ALL {
            // ramp-lint:allow(panic-reach) -- enum-indexed `PerMechanism`/`PerStructure` are total
            let base = self.base_rate[m][s];
            if base <= 0.0 {
                continue;
            }
            let mut op = self.base_ops[s]; // ramp-lint:allow(panic-reach) -- enum-indexed `PerMechanism`/`PerStructure` are total
            op.temperature = Kelvin::new(op.temperature.value() + temp_offset)
                .unwrap_or(op.temperature);
            let ratio = model.relative_rate(&op, chip_node) / base;
            chip_fit += self.base_fit[m][s] * ratio; // ramp-lint:allow(panic-reach) -- enum-indexed `PerMechanism`/`PerStructure` are total
        }
        if chip_fit <= 0.0 {
            return f64::MAX;
        }
        // FIT = failures per 1e9 device-hours ⇒ MTTF = 1e9/FIT hours.
        1.0e9 / chip_fit / HOURS_PER_YEAR
    }

    /// Simulates one chip: draws its process variation, re-prices every
    /// mechanism, draws the four mechanism lifetimes, and reports the
    /// earliest failure. The stream consumption order (variation, then
    /// EM, SM, TDDB, TC draws) is fixed and part of the determinism
    /// contract.
    #[must_use]
    pub fn sample_chip(&self, rng: &mut Rng) -> ChipOutcome {
        let variation = ChipVariation::sample(&self.variation, rng);
        let chip_node = self.perturbed_node(&variation);
        let offset = variation.temperature_offset_kelvin;
        let mut failure_years = f64::MAX;
        let mut killer = MechanismKind::Em;
        for m in MechanismKind::ALL {
            let mean_years = self.mechanism_mean_years(m, &chip_node, offset);
            let drawn = if mean_years == f64::MAX {
                f64::MAX
            } else if m == MechanismKind::Tc {
                CoffinManson::from_mean_years(mean_years, self.variation.tc_shape)
                    .sample_years(rng)
            } else {
                Lognormal::from_mean(mean_years, self.variation.lifetime_sigma).sample(rng)
            };
            // Strict < keeps the tie-break deterministic: first mechanism
            // in canonical order wins.
            if drawn < failure_years {
                failure_years = drawn;
                killer = m;
            }
        }
        ChipOutcome {
            failure_years,
            killer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::chip_rng;
    use ramp_core::{NodeId, PipelineConfig, QueryEngine, Qualification};

    fn test_anchor(node: NodeId) -> PopulationAnchor {
        let engine = QueryEngine::with_qualification(
            Qualification::from_constants(PerMechanism::from_fn(|_| 1.0)).unwrap(),
            PipelineConfig::quick(),
            "chip-tests",
        );
        engine
            .population_anchor(&engine.query("gzip", node).unwrap())
            .unwrap()
    }

    #[test]
    fn degenerate_variation_reproduces_the_anchor_mttf() {
        let anchor = test_anchor(NodeId::N180);
        let sampler = ChipSampler::new(&anchor, VariationModel::degenerate());
        let mut rng = chip_rng(1, 0, 0);
        let chip = sampler.sample_chip(&mut rng);
        // With zero variation and zero scatter, the chip's failure time is
        // min over the per-mechanism mean lifetimes, each of which matches
        // the anchor's per-mechanism FIT (ratio transfer at ratio 1). The
        // TC Weibull at its degenerate shape contributes ~1e-4 relative
        // wobble, hence the loose band.
        let min_mech_years = MechanismKind::ALL
            .iter()
            .map(|&m| {
                let fit: f64 = Structure::ALL
                    .iter()
                    .map(|&s| anchor.report.fit(m, s).value())
                    .sum();
                1.0e9 / fit / HOURS_PER_YEAR
            })
            .fold(f64::MAX, f64::min);
        assert!(
            (chip.failure_years / min_mech_years - 1.0).abs() < 1e-2,
            "degenerate chip {} vs analytic {}",
            chip.failure_years,
            min_mech_years
        );
    }

    #[test]
    fn chips_are_reproducible_from_their_stream() {
        let anchor = test_anchor(NodeId::N130);
        let sampler = ChipSampler::new(&anchor, VariationModel::default());
        let a = sampler.sample_chip(&mut chip_rng(7, 1, 99));
        let b = sampler.sample_chip(&mut chip_rng(7, 1, 99));
        assert_eq!(a, b);
        let c = sampler.sample_chip(&mut chip_rng(7, 1, 100));
        assert_ne!(a, c);
    }

    #[test]
    fn thinner_oxide_shortens_tddb_life() {
        let anchor = test_anchor(NodeId::N65HighV);
        let sampler = ChipSampler::new(&anchor, VariationModel::default());
        let base = sampler.node;
        let thin = sampler.perturbed_node(&ChipVariation {
            tox_factor: 0.95,
            temperature_offset_kelvin: 0.0,
            geometry_factor: 1.0,
        });
        let years_base = sampler.mechanism_mean_years(MechanismKind::Tddb, &base, 0.0);
        let years_thin = sampler.mechanism_mean_years(MechanismKind::Tddb, &thin, 0.0);
        assert!(
            years_thin < years_base,
            "thinner oxide must shorten TDDB life ({years_thin} vs {years_base})"
        );
    }

    #[test]
    fn hotter_chip_fails_every_thermal_mechanism_sooner() {
        let anchor = test_anchor(NodeId::N90);
        let sampler = ChipSampler::new(&anchor, VariationModel::default());
        let node = sampler.node;
        for m in [MechanismKind::Em, MechanismKind::Tddb, MechanismKind::Tc] {
            let cool = sampler.mechanism_mean_years(m, &node, 0.0);
            let hot = sampler.mechanism_mean_years(m, &node, 8.0);
            assert!(hot < cool, "{m}: +8K must shorten life ({hot} vs {cool})");
        }
    }
}
