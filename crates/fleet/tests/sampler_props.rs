//! Property-based tests for the fleet's distribution samplers.
//!
//! These are the statistical proofs behind the population simulator: the
//! lognormal actually has the median and log-sigma it was built with, the
//! truncated normal never escapes its window, and the Coffin–Manson
//! thermal-cycling lifetime behaves physically (strictly positive,
//! monotone in the temperature swing).

use proptest::prelude::*;
use ramp_fleet::{chip_rng, inverse_normal_cdf, CoffinManson, Lognormal, TruncatedNormal};
use ramp_units::{Sigma, WeibullShape};

/// Draws `n` lognormal samples from a deterministic stream.
fn lognormal_samples(dist: &Lognormal, seed: u64, n: usize) -> Vec<f64> {
    let mut rng = chip_rng(seed, 0, 0);
    (0..n).map(|_| dist.sample(&mut rng)).collect()
}

proptest! {
    // Statistical recovery at n = 100_000 is slow per case; a handful of
    // well-spread cases is plenty.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn lognormal_recovers_median_and_sigma(
        median in 0.5f64..200.0,
        sigma in 0.1f64..1.2,
        seed in 0u64..1_000,
    ) {
        let dist = Lognormal::from_median(median, Sigma::new(sigma).unwrap());
        let mut samples = lognormal_samples(&dist, seed, 100_000);
        samples.sort_by(f64::total_cmp);

        // Sample median → distribution median. The sample median of a
        // lognormal has relative standard error ~ sigma·sqrt(π/2n); at
        // n=1e5, sigma=1.2 that is ~0.5%, so 3% is a >5σ band.
        let sample_median = samples[samples.len() / 2];
        prop_assert!(
            (sample_median / median - 1.0).abs() < 0.03,
            "sample median {sample_median} vs {median}"
        );

        // Sample sd of ln(x) → sigma. Standard error ~ sigma/sqrt(2n).
        let logs: Vec<f64> = samples.iter().map(|&x| x.ln()).collect();
        let mean = logs.iter().sum::<f64>() / logs.len() as f64;
        let var = logs.iter().map(|l| (l - mean).powi(2)).sum::<f64>()
            / (logs.len() - 1) as f64;
        let sample_sigma = var.sqrt();
        prop_assert!(
            (sample_sigma / sigma - 1.0).abs() < 0.02,
            "sample sigma {sample_sigma} vs {sigma}"
        );
    }
}

proptest! {
    #[test]
    fn truncated_normal_never_escapes_its_window(
        mean in -50.0f64..50.0,
        sigma in 0.0f64..10.0,
        width in 0.5f64..4.0,
        seed in 0u64..10_000,
    ) {
        let dist = TruncatedNormal::symmetric(mean, Sigma::new(sigma).unwrap(), width);
        let mut rng = chip_rng(seed, 1, 0);
        for _ in 0..64 {
            let x = dist.sample(&mut rng);
            prop_assert!(
                (dist.lo()..=dist.hi()).contains(&x),
                "draw {x} outside [{}, {}]",
                dist.lo(),
                dist.hi()
            );
        }
    }

    #[test]
    fn coffin_manson_draws_are_strictly_positive(
        mean_years in 0.1f64..500.0,
        shape in 0.5f64..8.0,
        seed in 0u64..10_000,
    ) {
        let dist = CoffinManson::from_mean_years(mean_years, WeibullShape::new(shape).unwrap());
        let mut rng = chip_rng(seed, 2, 0);
        for _ in 0..64 {
            let years = dist.sample_years(&mut rng);
            prop_assert!(years > 0.0 && years.is_finite(), "drew {years}");
        }
    }

    #[test]
    fn coffin_manson_life_is_monotone_in_swing(
        ref_mean in 1.0f64..100.0,
        ref_dt in 5.0f64..40.0,
        factor in 1.01f64..4.0,
        exponent in 1.5f64..3.0,
    ) {
        // A larger thermal swing must never lengthen cycling life, and
        // the scaling is the paper's inverse power law.
        let small = CoffinManson::mean_years_at_swing(ref_mean, ref_dt, ref_dt, exponent);
        let large =
            CoffinManson::mean_years_at_swing(ref_mean, ref_dt, ref_dt * factor, exponent);
        prop_assert!(large < small, "ΔT×{factor}: {large} !< {small}");
        let expected = ref_mean * factor.powf(-exponent);
        prop_assert!(
            (large / expected - 1.0).abs() < 1e-9,
            "power law violated: {large} vs {expected}"
        );
    }

    #[test]
    fn inverse_normal_cdf_is_monotone_and_symmetric(
        a in 1e-6f64..0.999_999,
        b in 1e-6f64..0.999_999,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(inverse_normal_cdf(lo) <= inverse_normal_cdf(hi));
        // Φ⁻¹(1−p) = −Φ⁻¹(p) up to the approximation's error.
        prop_assert!(
            (inverse_normal_cdf(a) + inverse_normal_cdf(1.0 - a)).abs() < 1e-7,
            "asymmetric at {a}"
        );
    }
}
