//! Zero-allocation regression test for the thermal hot path.
//!
//! `ThermalSimulator::step_many` is the innermost loop of the whole
//! study — it runs once per activity interval per (benchmark, node)
//! pair. Its contract is that after construction-time warmup it touches
//! only stack state, pre-sized buffers, and atomic metric handles:
//! **zero** heap allocations per step. This test pins that contract
//! with the tracking allocator, so any future `clone()`, `format!`, or
//! `Vec` growth sneaking into the loop fails CI instead of silently
//! taxing every simulated microsecond.
//!
//! The test reads only the *calling thread's* allocation counters, so
//! concurrent test threads cannot contaminate the measurement.

use ramp_microarch::PerStructure;
use ramp_thermal::{ThermalParams, ThermalSimulator};
use ramp_units::{Seconds, SquareMillimeters, Watts};

#[test]
fn step_many_performs_zero_heap_allocations_after_warmup() {
    let sim = ThermalSimulator::new(
        SquareMillimeters::new(81.0).expect("valid area"),
        ThermalParams::reference(),
    )
    .expect("reference simulator builds");
    let powers: PerStructure<Watts> =
        PerStructure::from_fn(|_| Watts::new(4.0).expect("valid power"));
    let dt = Seconds::new(3.3e-6).expect("valid dt");
    let mut state = sim.initial_state(&powers).expect("steady state solves");

    // Warmup: pay one-time costs (histogram bucket registration, lazy
    // metric handles, any allocator pool growth) outside the window.
    for _ in 0..8 {
        state = sim.step_many(&state, &powers, dt, 4);
    }

    ramp_obs::set_alloc_tracking(true);
    let before = ramp_obs::thread_alloc_snapshot();
    for _ in 0..128 {
        state = sim.step_many(&state, &powers, dt, 4);
    }
    let after = ramp_obs::thread_alloc_snapshot();
    ramp_obs::set_alloc_tracking(false);

    let allocs = after.allocs.saturating_sub(before.allocs);
    let bytes = after.bytes.saturating_sub(before.bytes);
    assert_eq!(
        allocs, 0,
        "step_many allocated {allocs} times ({bytes} bytes) in 128 warm intervals; \
         the thermal hot path must stay allocation-free"
    );

    // The state kept evolving — the loop above really did the work.
    assert!(state.sink.value() > 0.0);
}
