//! Property-based tests of the RC thermal model's physical invariants.

use proptest::prelude::*;
use ramp_microarch::{PerStructure, Structure};
use ramp_thermal::{Floorplan, RcNetwork, ThermalParams, ThermalState};
use ramp_units::{Kelvin, Seconds, SquareMillimeters, Watts};

fn network(area: f64) -> RcNetwork {
    let fp = Floorplan::power4(SquareMillimeters::new(area).unwrap());
    RcNetwork::build(&fp, ThermalParams::reference()).unwrap()
}

fn power_vec(vals: &[f64]) -> PerStructure<Watts> {
    PerStructure::from_fn(|s| Watts::new(vals[s.index()]).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Energy balance: the sink's rise over ambient equals total power
    /// times the sink resistance, for any power distribution.
    #[test]
    fn sink_rise_equals_power_times_resistance(
        powers in proptest::collection::vec(0.0f64..8.0, 7),
        area in 10.0f64..81.0,
    ) {
        let net = network(area);
        let st = net.steady_state(&power_vec(&powers)).unwrap();
        let total: f64 = powers.iter().sum();
        let expect = 318.15 + total * net.params().sink_resistance;
        prop_assert!((st.sink.value() - expect).abs() < 1e-6);
    }

    /// Every junction sits at or above the spreader, which sits at or
    /// above the sink, which sits at or above ambient (heat flows out).
    #[test]
    fn temperature_ordering_holds(
        powers in proptest::collection::vec(0.01f64..8.0, 7),
    ) {
        let net = network(81.0);
        let st = net.steady_state(&power_vec(&powers)).unwrap();
        prop_assert!(st.sink.value() >= 318.15 - 1e-9);
        prop_assert!(st.spreader.value() >= st.sink.value() - 1e-9);
        for s in Structure::ALL {
            prop_assert!(
                st.structures[s].value() >= st.spreader.value() - 1e-9,
                "{s} below spreader"
            );
        }
    }

    /// Monotonicity: adding power to one structure cannot cool any node.
    #[test]
    fn steady_state_is_monotone_in_power(
        powers in proptest::collection::vec(0.0f64..6.0, 7),
        bump_idx in 0usize..7,
        bump in 0.1f64..5.0,
    ) {
        let net = network(81.0);
        let base = net.steady_state(&power_vec(&powers)).unwrap();
        let mut bumped = powers.clone();
        bumped[bump_idx] += bump;
        let hot = net.steady_state(&power_vec(&bumped)).unwrap();
        for s in Structure::ALL {
            prop_assert!(
                hot.structures[s].value() >= base.structures[s].value() - 1e-9,
                "{s} cooled when {bump_idx} got +{bump} W"
            );
        }
        prop_assert!(hot.sink.value() > base.sink.value());
    }

    /// Superposition: the network is linear, so temperatures-above-ambient
    /// for the sum of two power maps equal the sum of the individual
    /// rises.
    #[test]
    fn steady_state_superposition(
        a in proptest::collection::vec(0.0f64..4.0, 7),
        b in proptest::collection::vec(0.0f64..4.0, 7),
    ) {
        let net = network(40.0);
        let ambient = 318.15;
        let rise = |p: &PerStructure<Watts>| {
            let st = net.steady_state(p).unwrap();
            Structure::ALL.map(|s| st.structures[s].value() - ambient)
        };
        let sum_p: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let ra = rise(&power_vec(&a));
        let rb = rise(&power_vec(&b));
        let rab = rise(&power_vec(&sum_p));
        for i in 0..7 {
            prop_assert!(
                (rab[i] - ra[i] - rb[i]).abs() < 1e-6,
                "superposition violated at structure {i}"
            );
        }
    }

    /// A transient step moves every node toward (never past) its steady
    /// state when starting between ambient and steady state.
    #[test]
    fn transient_moves_toward_steady_state(
        powers in proptest::collection::vec(0.5f64..6.0, 7),
        blend in 0.0f64..1.0,
    ) {
        let net = network(81.0);
        let p = power_vec(&powers);
        let target = net.steady_state(&p).unwrap();
        let start = ThermalState {
            structures: PerStructure::from_fn(|s| {
                Kelvin::new(318.15 + blend * (target.structures[s].value() - 318.15))
                    .unwrap()
            }),
            spreader: Kelvin::new(
                318.15 + blend * (target.spreader.value() - 318.15),
            )
            .unwrap(),
            sink: target.sink,
        };
        let stepped = net.step(&start, &p, Seconds::MICROSECOND);
        for s in Structure::ALL {
            let before = (target.structures[s] - start.structures[s]).abs();
            let after = (target.structures[s] - stepped.structures[s]).abs();
            prop_assert!(after <= before + 1e-9, "{s} moved away from steady state");
        }
    }

    /// Zero power decays toward the boundary (sink) temperature.
    #[test]
    fn zero_power_cools(start_offset in 1.0f64..40.0) {
        let net = network(81.0);
        let zero = PerStructure::from_fn(|_| Watts::ZERO);
        let sink = Kelvin::new(330.0).unwrap();
        let mut st = ThermalState::uniform(Kelvin::new(330.0 + start_offset).unwrap());
        st.sink = sink;
        let next = net.step(&st, &zero, Seconds::MICROSECOND);
        for s in Structure::ALL {
            prop_assert!(next.structures[s].value() <= st.structures[s].value() + 1e-12);
        }
    }
}
