//! Core floorplan: structure rectangles on the die.

use ramp_microarch::{PerStructure, Structure};
use ramp_units::SquareMillimeters;
use serde::{Deserialize, Serialize};

/// A placed rectangular block, in millimetres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The structure occupying this block.
    pub structure: Structure,
    /// Lower-left x (mm).
    pub x: f64,
    /// Lower-left y (mm).
    pub y: f64,
    /// Width (mm).
    pub w: f64,
    /// Height (mm).
    pub h: f64,
}

impl Block {
    /// Block area.
    #[must_use]
    pub fn area(&self) -> SquareMillimeters {
        SquareMillimeters::new(self.w * self.h).expect("blocks have positive extent") // ramp-lint:allow(panic-hygiene) -- block constructor enforces positive extent
    }

    /// Centre coordinates (mm).
    #[must_use]
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Length of the edge shared with `other` (mm); zero if not adjacent.
    ///
    /// Two blocks are adjacent when they abut along a full or partial edge
    /// (within a small tolerance used to absorb floating-point tiling).
    #[must_use]
    // ramp-lint:allow(unit-safety) -- edge length in mm; no length newtype exists
    pub fn shared_edge(&self, other: &Block) -> f64 {
        const EPS: f64 = 1e-9;
        let overlap = |a0: f64, a1: f64, b0: f64, b1: f64| (a1.min(b1) - a0.max(b0)).max(0.0);
        // Vertical adjacency (stacked): y-edges touch, x-ranges overlap.
        if (self.y + self.h - other.y).abs() < EPS || (other.y + other.h - self.y).abs() < EPS {
            return overlap(self.x, self.x + self.w, other.x, other.x + other.w);
        }
        // Horizontal adjacency (side by side).
        if (self.x + self.w - other.x).abs() < EPS || (other.x + other.w - self.x).abs() < EPS {
            return overlap(self.y, self.y + self.h, other.y, other.y + other.h);
        }
        0.0
    }
}

/// A complete floorplan: one block per structure tiling a square die.
///
/// # Examples
///
/// ```
/// use ramp_thermal::Floorplan;
/// use ramp_units::SquareMillimeters;
/// let fp = Floorplan::power4(SquareMillimeters::new(81.0)?);
/// assert_eq!(fp.blocks().len(), 7);
/// let total: f64 = fp.blocks().iter().map(|b| b.area().value()).sum();
/// assert!((total - 81.0).abs() < 1e-9);
/// # Ok::<(), ramp_units::UnitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    blocks: Vec<Block>,
    die_area: SquareMillimeters,
}

impl Floorplan {
    /// Builds the POWER4-like floorplan on a square die of the given area.
    ///
    /// Three rows of blocks tile the die exactly; per-structure areas equal
    /// [`Structure::area_fraction`] × die area, so the same constructor
    /// serves every technology node by passing the scaled die area.
    #[must_use]
    pub fn power4(die_area: SquareMillimeters) -> Self {
        let side = die_area.value().sqrt();
        // (row, members): heights are each row's summed area fraction.
        let rows: [&[Structure]; 3] = [
            &[Structure::Lsu, Structure::Ifu],
            &[Structure::Fxu, Structure::Isu, Structure::Bxu],
            &[Structure::Fpu, Structure::Idu],
        ];
        let mut blocks = Vec::with_capacity(Structure::COUNT);
        let mut y = 0.0;
        for row in rows {
            let row_frac: f64 = row.iter().map(|s| s.area_fraction()).sum();
            let h = row_frac * side;
            let mut x = 0.0;
            for &s in row {
                let w = s.area_fraction() / row_frac * side;
                blocks.push(Block {
                    structure: s,
                    x,
                    y,
                    w,
                    h,
                });
                x += w;
            }
            y += h;
        }
        Floorplan { blocks, die_area }
    }

    /// The placed blocks (one per structure, in row order).
    #[must_use]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Total die area.
    #[must_use]
    pub fn die_area(&self) -> SquareMillimeters {
        self.die_area
    }

    /// The block of a given structure.
    #[must_use]
    pub fn block(&self, s: Structure) -> &Block {
        self.blocks
            .iter()
            .find(|b| b.structure == s)
            .expect("floorplan covers all structures") // ramp-lint:allow(panic-hygiene) -- floorplan validation covers every structure
    }

    /// Per-structure areas.
    #[must_use]
    pub fn areas(&self) -> PerStructure<SquareMillimeters> {
        PerStructure::from_fn(|s| self.block(s).area())
    }

    /// All adjacent structure pairs with their shared edge length (mm).
    #[must_use]
    pub fn adjacencies(&self) -> Vec<(Structure, Structure, f64)> {
        let mut out = Vec::new();
        for (i, a) in self.blocks.iter().enumerate() {
            for b in self.blocks.iter().skip(i + 1) {
                let e = a.shared_edge(b);
                if e > 1e-9 {
                    out.push((a.structure, b.structure, e));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> Floorplan {
        Floorplan::power4(SquareMillimeters::new(81.0).unwrap())
    }

    #[test]
    fn covers_all_structures_once() {
        let fp = plan();
        for s in Structure::ALL {
            assert_eq!(
                fp.blocks().iter().filter(|b| b.structure == s).count(),
                1,
                "{s}"
            );
        }
    }

    #[test]
    fn areas_match_fractions() {
        let fp = plan();
        for s in Structure::ALL {
            let want = 81.0 * s.area_fraction();
            let got = fp.block(s).area().value();
            assert!((got - want).abs() < 1e-9, "{s}: {got} vs {want}");
        }
    }

    #[test]
    fn blocks_stay_inside_die() {
        let fp = plan();
        let side = 9.0;
        for b in fp.blocks() {
            assert!(b.x >= -1e-9 && b.y >= -1e-9);
            assert!(b.x + b.w <= side + 1e-9);
            assert!(b.y + b.h <= side + 1e-9);
        }
    }

    #[test]
    fn no_overlaps() {
        let fp = plan();
        for (i, a) in fp.blocks().iter().enumerate() {
            for b in fp.blocks().iter().skip(i + 1) {
                let x_overlap = (a.x + a.w).min(b.x + b.w) - a.x.max(b.x);
                let y_overlap = (a.y + a.h).min(b.y + b.h) - a.y.max(b.y);
                assert!(
                    x_overlap <= 1e-9 || y_overlap <= 1e-9,
                    "{} overlaps {}",
                    a.structure,
                    b.structure
                );
            }
        }
    }

    #[test]
    fn adjacency_is_symmetric_and_nonempty() {
        let fp = plan();
        let adj = fp.adjacencies();
        assert!(adj.len() >= 6, "expected a connected tiling, got {adj:?}");
        // LSU and IFU share the bottom row boundary.
        assert!(adj
            .iter()
            .any(|&(a, b, _)| (a == Structure::Lsu && b == Structure::Ifu)
                || (a == Structure::Ifu && b == Structure::Lsu)));
    }

    #[test]
    fn scaling_preserves_shape() {
        let big = plan();
        let small = Floorplan::power4(SquareMillimeters::new(81.0 * 0.16).unwrap());
        for s in Structure::ALL {
            let ratio = small.block(s).area().value() / big.block(s).area().value();
            assert!((ratio - 0.16).abs() < 1e-9);
        }
        assert_eq!(big.adjacencies().len(), small.adjacencies().len());
    }

    #[test]
    fn shared_edge_cases() {
        let a = Block {
            structure: Structure::Ifu,
            x: 0.0,
            y: 0.0,
            w: 2.0,
            h: 1.0,
        };
        let right = Block {
            structure: Structure::Idu,
            x: 2.0,
            y: 0.5,
            w: 1.0,
            h: 2.0,
        };
        let above = Block {
            structure: Structure::Isu,
            x: 1.0,
            y: 1.0,
            w: 3.0,
            h: 1.0,
        };
        let far = Block {
            structure: Structure::Bxu,
            x: 5.0,
            y: 5.0,
            w: 1.0,
            h: 1.0,
        };
        assert!((a.shared_edge(&right) - 0.5).abs() < 1e-12);
        assert!((a.shared_edge(&above) - 1.0).abs() < 1e-12);
        assert_eq!(a.shared_edge(&far), 0.0);
        assert_eq!(right.shared_edge(&a), a.shared_edge(&right));
    }
}
