//! The paper's two-pass thermal simulation methodology.
//!
//! The heat sink's RC time constant is far larger than any simulation we
//! can afford, so (following §4.3 of the paper) every workload is run
//! twice:
//!
//! 1. a first pass collects each structure's **average power**, from which
//!    a steady-state solve yields the sink (and initial silicon)
//!    temperatures;
//! 2. the second pass integrates the silicon transient at microsecond
//!    granularity with the sink pinned at its steady-state temperature.
//!
//! [`ThermalSimulator`] packages this workflow. It also implements the
//! paper's cross-technology rule: when scaling the die, the sink's
//! convection resistance is rescaled so each application's sink
//! temperature stays constant across nodes.

use crate::network::{RcNetwork, ThermalParams, ThermalState};
use crate::Floorplan;
use ramp_microarch::{PerStructure, Structure};
use ramp_units::{Kelvin, KelvinPerWatt, Seconds, SquareMillimeters, Watts};
use std::sync::Arc;

/// Bucket bounds for the per-interval substep-count histogram: substeps
/// are `ceil(interval / max_stable_step)`, typically single digits for
/// the default intervals but growing with finer floorplans.
const SUBSTEP_BOUNDS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Two-pass thermal simulator for one die size.
///
/// # Examples
///
/// ```
/// use ramp_thermal::{ThermalParams, ThermalSimulator};
/// use ramp_microarch::PerStructure;
/// use ramp_units::{Seconds, SquareMillimeters, Watts};
///
/// let sim = ThermalSimulator::new(
///     SquareMillimeters::new(81.0)?, ThermalParams::reference()).unwrap();
/// let avg = PerStructure::from_fn(|_| Watts::new(4.0).unwrap());
/// let mut state = sim.initial_state(&avg).unwrap();
/// // Second pass: step with (time-varying) powers.
/// state = sim.step(&state, &avg, Seconds::MICROSECOND);
/// assert!(state.sink.value() > 318.0);
/// # Ok::<(), ramp_units::UnitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ThermalSimulator {
    network: RcNetwork,
    steady_solves: Arc<ramp_obs::Counter>,
    transient_steps: Arc<ramp_obs::Counter>,
    substeps_hist: Arc<ramp_obs::Histogram>,
}

impl ThermalSimulator {
    /// Builds a simulator for a POWER4-like floorplan of the given die
    /// area.
    ///
    /// # Errors
    ///
    /// Returns an error description if `params` is invalid.
    pub fn new(die_area: SquareMillimeters, params: ThermalParams) -> Result<Self, String> {
        let fp = Floorplan::power4(die_area);
        let network = RcNetwork::build(&fp, params)?;
        Ok(Self::from_network(network))
    }

    fn from_network(network: RcNetwork) -> Self {
        // Metric handles are resolved once per simulator so the per-step
        // hot path touches only atomics, never the registry lock.
        ThermalSimulator {
            network,
            steady_solves: ramp_obs::counter("thermal.steady_solves"),
            transient_steps: ramp_obs::counter("thermal.transient_steps"),
            substeps_hist: ramp_obs::histogram("thermal.substeps_per_interval", &SUBSTEP_BOUNDS),
        }
    }

    /// Builds a simulator whose sink resistance has been rescaled so that
    /// the sink temperature under `avg_power_here` equals the temperature
    /// the reference node reaches under `avg_power_reference` with the
    /// reference resistance — the paper's constant-sink-temperature rule.
    ///
    /// # Errors
    ///
    /// Returns an error description if `params` is invalid or either power
    /// is zero.
    pub fn with_constant_sink_temperature(
        die_area: SquareMillimeters,
        params: ThermalParams,
        avg_power_reference: Watts,
        avg_power_here: Watts,
    ) -> Result<Self, String> {
        if avg_power_reference.value() <= 0.0 || avg_power_here.value() <= 0.0 {
            return Err("average powers must be positive for sink rescaling".to_string());
        }
        let sim = Self::new(die_area, params)?;
        // ΔT_sink = P · R must match: R' = R · P_ref / P_here.
        let r = KelvinPerWatt::new(
            params.sink_resistance * avg_power_reference.value() / avg_power_here.value(),
        )
        .map_err(|e| format!("rescaled sink resistance invalid: {e}"))?;
        Ok(Self::from_network(sim.network.with_sink_resistance(r)))
    }

    /// The underlying network.
    #[must_use]
    pub fn network(&self) -> &RcNetwork {
        &self.network
    }

    /// First pass: steady state for the run's average powers. The result
    /// initialises the second pass.
    ///
    /// # Errors
    ///
    /// Returns an error string if the steady-state solve fails (degenerate
    /// network).
    pub fn initial_state(
        &self,
        average_powers: &PerStructure<Watts>,
    ) -> Result<ThermalState, String> {
        self.steady_solves.incr();
        self.network
            .steady_state(average_powers)
            .map_err(|e| e.to_string())
    }

    /// Second pass: one transient step of `dt` under `powers`, sink held
    /// at its initialised temperature.
    #[must_use]
    pub fn step(
        &self,
        state: &ThermalState,
        powers: &PerStructure<Watts>,
        dt: Seconds,
    ) -> ThermalState {
        self.transient_steps.incr();
        self.network.step(state, powers, dt)
    }

    /// Integrates one activity interval as `substeps` equal transient
    /// steps of `dt` each, recording the substep count in the
    /// `thermal.substeps_per_interval` histogram. Equivalent to calling
    /// [`ThermalSimulator::step`] `substeps` times.
    #[must_use]
    pub fn step_many(
        &self,
        state: &ThermalState,
        powers: &PerStructure<Watts>,
        dt: Seconds,
        substeps: u32,
    ) -> ThermalState {
        self.substeps_hist.observe(f64::from(substeps));
        self.transient_steps.add(u64::from(substeps));
        let mut current = *state;
        for _ in 0..substeps {
            current = self.network.step(&current, powers, dt);
        }
        current
    }

    /// Convenience: the sink temperature the first pass would produce.
    ///
    /// # Errors
    ///
    /// Returns an error string if the steady-state solve fails.
    pub fn steady_sink_temperature(
        &self,
        average_powers: &PerStructure<Watts>,
    ) -> Result<Kelvin, String> {
        Ok(self.initial_state(average_powers)?.sink)
    }

    /// Convenience: the hottest structure in steady state.
    ///
    /// # Errors
    ///
    /// Returns an error string if the steady-state solve fails.
    pub fn steady_hottest(
        &self,
        average_powers: &PerStructure<Watts>,
    ) -> Result<(Structure, Kelvin), String> {
        Ok(self.initial_state(average_powers)?.hottest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn watts(v: f64) -> Watts {
        Watts::new(v).unwrap()
    }

    fn uniform(w: f64) -> PerStructure<Watts> {
        PerStructure::from_fn(|_| watts(w))
    }

    #[test]
    fn two_pass_initialisation_is_self_consistent() {
        let sim = ThermalSimulator::new(
            SquareMillimeters::new(81.0).unwrap(),
            ThermalParams::reference(),
        )
        .unwrap();
        let avg = uniform(4.0);
        let init = sim.initial_state(&avg).unwrap();
        // Stepping from the steady state with the same powers stays put.
        let stepped = sim.step(&init, &avg, Seconds::MICROSECOND);
        for s in Structure::ALL {
            assert!(
                (stepped.structures[s] - init.structures[s]).abs() < 1e-6,
                "{s} drifted"
            );
        }
    }

    #[test]
    fn constant_sink_rule_holds_sink_temperature() {
        let params = ThermalParams::reference();
        let reference = ThermalSimulator::new(
            SquareMillimeters::new(81.0).unwrap(),
            params,
        )
        .unwrap();
        let p180 = uniform(29.1 / 7.0);
        let sink_180 = reference.steady_sink_temperature(&p180).unwrap();

        // 65 nm: 0.16× area, lower total power.
        let p65 = uniform(16.9 / 7.0);
        let scaled = ThermalSimulator::with_constant_sink_temperature(
            SquareMillimeters::new(81.0 * 0.16).unwrap(),
            params,
            watts(29.1),
            watts(16.9),
        )
        .unwrap();
        let sink_65 = scaled.steady_sink_temperature(&p65).unwrap();
        assert!(
            (sink_180 - sink_65).abs() < 0.01,
            "sink must stay constant: {sink_180} vs {sink_65}"
        );
        // ... while the junctions run hotter on the smaller die.
        let hot_180 = reference.steady_hottest(&p180).unwrap().1;
        let hot_65 = scaled.steady_hottest(&p65).unwrap().1;
        assert!(hot_65.value() > hot_180.value() + 3.0);
    }

    #[test]
    fn transient_tracks_power_phase_change() {
        let sim = ThermalSimulator::new(
            SquareMillimeters::new(81.0).unwrap(),
            ThermalParams::reference(),
        )
        .unwrap();
        let low = uniform(2.0);
        let high = uniform(6.0);
        let mut state = sim.initial_state(&low).unwrap();
        let t0 = state.hottest().1;
        // Burst of high power for 20 ms.
        for _ in 0..20_000 {
            state = sim.step(&state, &high, Seconds::MICROSECOND);
        }
        let t1 = state.hottest().1;
        assert!(t1.value() > t0.value() + 1.0, "heating visible: {t0} → {t1}");
        // And cooling back down.
        for _ in 0..20_000 {
            state = sim.step(&state, &low, Seconds::MICROSECOND);
        }
        let t2 = state.hottest().1;
        assert!(t2.value() < t1.value());
    }

    #[test]
    fn step_many_matches_repeated_single_steps() {
        let sim = ThermalSimulator::new(
            SquareMillimeters::new(81.0).unwrap(),
            ThermalParams::reference(),
        )
        .unwrap();
        let avg = uniform(3.0);
        let hot = uniform(6.5);
        let init = sim.initial_state(&avg).unwrap();
        let mut manual = init;
        for _ in 0..7 {
            manual = sim.step(&manual, &hot, Seconds::MICROSECOND);
        }
        let batched = sim.step_many(&init, &hot, Seconds::MICROSECOND, 7);
        for s in Structure::ALL {
            assert_eq!(
                manual.structures[s].value().to_bits(),
                batched.structures[s].value().to_bits(),
                "{s} must be bit-identical"
            );
        }
    }

    #[test]
    fn rejects_zero_reference_power() {
        let r = ThermalSimulator::with_constant_sink_temperature(
            SquareMillimeters::new(81.0).unwrap(),
            ThermalParams::reference(),
            Watts::ZERO,
            watts(10.0),
        );
        assert!(r.is_err());
    }
}
