//! Compact RC thermal model at microarchitectural-structure granularity
//! (HotSpot-like).
//!
//! This crate stands in for the HotSpot tool in the paper's pipeline. It
//! models the seven-structure POWER4-like floorplan as a lumped RC
//! network — per-block vertical conduction through die and TIM, Maxwell
//! spreading into the heat spreader, lateral silicon coupling, and a
//! convection-cooled heat sink — and implements the paper's two-pass
//! methodology (steady-state sink initialisation, then microsecond-step
//! transients) plus the constant-sink-temperature scaling rule.
//!
//! # Quick start
//!
//! ```
//! use ramp_thermal::{ThermalParams, ThermalSimulator};
//! use ramp_microarch::PerStructure;
//! use ramp_units::{Seconds, SquareMillimeters, Watts};
//!
//! let sim = ThermalSimulator::new(SquareMillimeters::new(81.0)?,
//!                                 ThermalParams::reference()).unwrap();
//! let avg = PerStructure::from_fn(|_| Watts::new(29.1 / 7.0).unwrap());
//! let mut state = sim.initial_state(&avg).unwrap();
//! for _ in 0..100 {
//!     state = sim.step(&state, &avg, Seconds::MICROSECOND);
//! }
//! let (hottest, temp) = state.hottest();
//! println!("{hottest}: {temp:.1}");
//! # Ok::<(), ramp_units::UnitError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod floorplan;
mod network;
mod simulator;
mod solve;

pub use floorplan::{Block, Floorplan};
pub use network::{RcNetwork, ThermalParams, ThermalState};
pub use simulator::ThermalSimulator;
pub use solve::{solve, SingularMatrix};
