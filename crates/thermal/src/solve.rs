//! Small dense linear solver (Gaussian elimination with partial pivoting).
//!
//! The RC network has ~10 nodes, so a dense direct solve is both simplest
//! and fastest; no external linear-algebra dependency is warranted.

/// Error returned when a linear system cannot be solved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrix;

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thermal conductance matrix is singular")
    }
}

impl std::error::Error for SingularMatrix {}

/// Solves `A·x = b` in place for a small dense system.
///
/// # Errors
///
/// Returns [`SingularMatrix`] if a pivot collapses below `1e-30` (the
/// network is disconnected or degenerate).
///
/// # Panics
///
/// Panics if `a` is not `n×n` for `n = b.len()`.
pub fn solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Result<Vec<f64>, SingularMatrix> {
    let n = b.len();
    assert_eq!(a.len(), n, "matrix row count");
    for row in a.iter() {
        assert_eq!(row.len(), n, "matrix column count");
    }

    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            // ramp-lint:allow(panic-reach) -- pivot-search indices stay below the matrix dimension
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range"); // ramp-lint:allow(panic-hygiene) -- range is non-empty by construction
        if a[pivot_row][col].abs() < 1e-30 {
            return Err(SingularMatrix);
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        let pivot = a[col][col]; // ramp-lint:allow(panic-reach) -- in-bounds: `a` is n-by-n (asserted) and indices stay below n
        for row in col + 1..n {
            let factor = a[row][col] / pivot; // ramp-lint:allow(panic-reach) -- in-bounds: `a` is n-by-n (asserted) and indices stay below n
            if factor == 0.0 {
                continue;
            }
            // Split the rows so the pivot row can be read while the
            // target row is mutated.
            let (pivot_rows, rest) = a.split_at_mut(col + 1);
            let pivot_row_vals = &pivot_rows[col]; // ramp-lint:allow(panic-reach) -- in-bounds: `a` is n-by-n (asserted) and indices stay below n
            let target = &mut rest[row - col - 1];
            for k in col..n {
                target[k] -= factor * pivot_row_vals[k]; // ramp-lint:allow(panic-reach) -- in-bounds: `a` is n-by-n (asserted) and indices stay below n
            }
            b[row] -= factor * b[col]; // ramp-lint:allow(panic-reach) -- in-bounds: `a` is n-by-n (asserted) and indices stay below n
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row]; // ramp-lint:allow(panic-reach) -- in-bounds: `a` is n-by-n (asserted) and indices stay below n
        for k in row + 1..n {
            acc -= a[row][k] * x[k]; // ramp-lint:allow(panic-reach) -- in-bounds: `a` is n-by-n (asserted) and indices stay below n
        }
        x[row] = acc / a[row][row]; // ramp-lint:allow(panic-reach) -- in-bounds: `a` is n-by-n (asserted) and indices stay below n
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity() {
        let mut a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut b = vec![3.0, -4.0];
        let x = solve(&mut a, &mut b).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn known_system() {
        // 2x + y = 5 ; x - y = 1  → x = 2, y = 1
        let mut a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let mut b = vec![5.0, 1.0];
        let x = solve(&mut a, &mut b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn requires_pivoting() {
        // Leading zero forces a row swap.
        let mut a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let mut b = vec![7.0, 9.0];
        let x = solve(&mut a, &mut b).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let mut a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let mut b = vec![1.0, 2.0];
        assert_eq!(solve(&mut a, &mut b), Err(SingularMatrix));
    }

    #[test]
    fn residual_small_for_random_spd_like_system() {
        // Diagonally dominant system of moderate size.
        let n = 12;
        let mut rng = 1234u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng % 1000) as f64 / 1000.0
        };
        let mut a: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| next() * 0.1).collect())
            .collect();
        for (i, row) in a.iter_mut().enumerate() {
            row[i] = 2.0 + next();
        }
        let b: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        let x = solve(&mut a2, &mut b2).unwrap();
        for i in 0..n {
            let lhs: f64 = (0..n).map(|j| a[i][j] * x[j]).sum();
            assert!((lhs - b[i]).abs() < 1e-9, "row {i}: {lhs} vs {}", b[i]);
        }
    }
}
