//! The compact RC thermal network: construction, steady state, transient.

use crate::floorplan::Floorplan;
use crate::solve::{solve, SingularMatrix};
use ramp_microarch::{PerStructure, Structure};
use ramp_units::{Kelvin, KelvinPerWatt, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Physical parameters of the thermal stack.
///
/// All resistances derive from these constants plus the floorplan geometry,
/// so scaling the die automatically scales the network the way real silicon
/// does: through-plane terms grow as `1/A`, spreading terms as `1/√A`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalParams {
    /// Die thickness (m).
    pub die_thickness_m: f64,
    /// Silicon thermal conductivity (W/m·K) at operating temperature.
    pub k_silicon: f64,
    /// Volumetric heat capacity of silicon (J/m³·K).
    pub vol_heat_capacity: f64,
    /// Thermal-interface-material thickness (m).
    pub tim_thickness_m: f64,
    /// TIM conductivity (W/m·K).
    pub k_tim: f64,
    /// Effective conductivity for spreading/constriction into the heat
    /// spreader (W/m·K).
    pub k_spreading: f64,
    /// Spreader lumped heat capacity (J/K).
    pub spreader_capacitance: f64,
    /// Spreader-to-sink bulk resistance (K/W).
    pub spreader_to_sink_resistance: f64,
    /// Sink-to-ambient convection resistance (K/W). The paper uses
    /// 0.8 K/W at 180 nm and rescales it per node to hold each
    /// application's sink temperature constant.
    pub sink_resistance: f64,
    /// Ambient air temperature.
    pub ambient: Kelvin,
}

impl ThermalParams {
    /// Reference parameters for the 180 nm POWER4-like package
    /// (0.8 K/W sink per Skadron et al., 45 °C ambient).
    #[must_use]
    pub fn reference() -> Self {
        ThermalParams {
            die_thickness_m: 0.42e-3,
            k_silicon: 120.0,
            vol_heat_capacity: 1.75e6,
            tim_thickness_m: 18e-6,
            k_tim: 4.2,
            k_spreading: 130.0,
            spreader_capacitance: 30.0,
            spreader_to_sink_resistance: 0.10,
            sink_resistance: 0.8,
            ambient: Kelvin::new_const(318.15),
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let positive = [
            ("die_thickness_m", self.die_thickness_m),
            ("k_silicon", self.k_silicon),
            ("vol_heat_capacity", self.vol_heat_capacity),
            ("tim_thickness_m", self.tim_thickness_m),
            ("k_tim", self.k_tim),
            ("k_spreading", self.k_spreading),
            ("spreader_capacitance", self.spreader_capacitance),
            ("spreader_to_sink_resistance", self.spreader_to_sink_resistance),
            ("sink_resistance", self.sink_resistance),
        ];
        for (name, v) in positive {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{name} must be finite and positive, got {v}"));
            }
        }
        Ok(())
    }
}

/// Temperatures of every node in the network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalState {
    /// Per-structure junction temperatures.
    pub structures: PerStructure<Kelvin>,
    /// Heat-spreader temperature.
    pub spreader: Kelvin,
    /// Heat-sink temperature.
    pub sink: Kelvin,
}

impl ThermalState {
    /// A uniform state (everything at `t`).
    #[must_use]
    pub fn uniform(t: Kelvin) -> Self {
        ThermalState {
            structures: PerStructure::from_fn(|_| t),
            spreader: t,
            sink: t,
        }
    }

    /// The hottest structure and its temperature.
    #[must_use]
    pub fn hottest(&self) -> (Structure, Kelvin) {
        Structure::ALL
            .iter()
            // ramp-lint:allow(panic-reach) -- enum-indexed `PerStructure` is total
            .map(|&s| (s, self.structures[s]))
            .max_by(|a, b| a.1.value().total_cmp(&b.1.value()))
            .expect("non-empty structure list") // ramp-lint:allow(panic-hygiene) -- structure list is a non-empty static enum
    }
}

/// The assembled RC network for one die size.
///
/// # Examples
///
/// ```
/// use ramp_thermal::{Floorplan, RcNetwork, ThermalParams};
/// use ramp_microarch::PerStructure;
/// use ramp_units::{SquareMillimeters, Watts};
///
/// let fp = Floorplan::power4(SquareMillimeters::new(81.0)?);
/// let net = RcNetwork::build(&fp, ThermalParams::reference()).unwrap();
/// let powers = PerStructure::from_fn(|_| Watts::new(4.0).unwrap());
/// let state = net.steady_state(&powers).unwrap();
/// assert!(state.sink.value() > 318.15);           // above ambient
/// assert!(state.hottest().1.value() > state.sink.value());
/// # Ok::<(), ramp_units::UnitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RcNetwork {
    /// Structure→spreader vertical conductance (W/K).
    g_vertical: PerStructure<f64>,
    /// Lateral conductances `(a, b, g)`.
    g_lateral: Vec<(Structure, Structure, f64)>,
    /// Structure heat capacities (J/K).
    capacitance: PerStructure<f64>,
    params: ThermalParams,
}

impl RcNetwork {
    /// Builds the network for a floorplan.
    ///
    /// # Errors
    ///
    /// Returns an error description if the parameters are invalid.
    pub fn build(floorplan: &Floorplan, params: ThermalParams) -> Result<Self, String> {
        params.validate()?;
        let g_vertical = PerStructure::from_fn(|s| {
            let area_m2 = floorplan.block(s).area().value() * 1e-6;
            let r_through = params.die_thickness_m / (params.k_silicon * area_m2)
                + params.tim_thickness_m / (params.k_tim * area_m2);
            let radius = (area_m2 / std::f64::consts::PI).sqrt();
            let r_spread = 1.0 / (2.0 * params.k_spreading * radius);
            1.0 / (r_through + r_spread)
        });
        let g_lateral = floorplan
            .adjacencies()
            .into_iter()
            .map(|(a, b, edge_mm)| {
                let (ax, ay) = floorplan.block(a).center();
                let (bx, by) = floorplan.block(b).center();
                let dist_m = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt() * 1e-3;
                let cross_m2 = edge_mm * 1e-3 * params.die_thickness_m;
                let g = params.k_silicon * cross_m2 / dist_m;
                (a, b, g)
            })
            .collect();
        let capacitance = PerStructure::from_fn(|s| {
            let area_m2 = floorplan.block(s).area().value() * 1e-6;
            params.vol_heat_capacity * area_m2 * params.die_thickness_m
        });
        Ok(RcNetwork {
            g_vertical,
            g_lateral,
            capacitance,
            params,
        })
    }

    /// The parameter set this network was built with.
    #[must_use]
    pub fn params(&self) -> &ThermalParams {
        &self.params
    }

    /// Replaces the sink-to-ambient resistance (the paper's per-node
    /// rescaling knob) and returns the modified network.
    #[must_use]
    pub fn with_sink_resistance(mut self, r: KelvinPerWatt) -> Self {
        self.params.sink_resistance = r.value();
        self
    }

    /// Solves the full steady state for constant per-structure powers.
    ///
    /// Node order: 7 structures, then spreader, then sink; ambient is the
    /// boundary.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrix`] if the network is degenerate (cannot
    /// happen for a validated parameter set).
    pub fn steady_state(
        &self,
        powers: &PerStructure<Watts>,
    ) -> Result<ThermalState, SingularMatrix> {
        const N: usize = Structure::COUNT + 2;
        let spreader = Structure::COUNT;
        let sink = Structure::COUNT + 1;
        let mut a = vec![vec![0.0; N]; N];
        let mut b = vec![0.0; N];

        let connect = |a: &mut Vec<Vec<f64>>, i: usize, j: usize, g: f64| {
            // ramp-lint:allow(panic-reach) -- the matrix is n-by-n and `i` is bounded by the loop
            a[i][i] += g;
            a[j][j] += g; // ramp-lint:allow(panic-reach) -- node index is below the fixed network size by construction
            a[i][j] -= g;
            a[j][i] -= g; // ramp-lint:allow(panic-reach) -- node index is below the fixed network size by construction
        };

        for s in Structure::ALL {
            connect(&mut a, s.index(), spreader, self.g_vertical[s]); // ramp-lint:allow(panic-reach) -- node index is below the fixed network size by construction
            b[s.index()] += powers[s].value();
        }
        for &(x, y, g) in &self.g_lateral {
            connect(&mut a, x.index(), y.index(), g);
        }
        connect(
            &mut a,
            spreader,
            sink,
            1.0 / self.params.spreader_to_sink_resistance,
        );
        // Sink to ambient boundary.
        let g_amb = 1.0 / self.params.sink_resistance;
        a[sink][sink] += g_amb; // ramp-lint:allow(panic-reach) -- node index is below the fixed network size by construction
        b[sink] += g_amb * self.params.ambient.value();

        let x = solve(&mut a, &mut b)?;
        Ok(ThermalState {
            structures: PerStructure::from_fn(|s| {
                Kelvin::new(x[s.index()]).expect("steady-state temperature in range") // ramp-lint:allow(panic-hygiene) -- converged solve stays in the valid temperature range
            }),
            spreader: Kelvin::new(x[spreader]).expect("in range"), // ramp-lint:allow(panic-hygiene) -- converged solve stays in the valid temperature range
            sink: Kelvin::new(x[sink]).expect("in range"), // ramp-lint:allow(panic-hygiene) -- converged solve stays in the valid temperature range
        })
    }

    /// Advances the transient state by `dt` with the given powers, using
    /// forward-Euler integration of the structure and spreader nodes.
    ///
    /// The sink is treated as a fixed-temperature boundary: its thermal
    /// mass is orders of magnitude larger than anything simulated at
    /// microsecond granularity, which is exactly why the paper initialises
    /// it from a separate steady-state pass ([`RcNetwork::steady_state`]).
    #[must_use]
    pub fn step(
        &self,
        state: &ThermalState,
        powers: &PerStructure<Watts>,
        dt: Seconds,
    ) -> ThermalState {
        let dt = dt.value();
        // ramp-lint:allow(panic-reach) -- enum-indexed `PerStructure` is total
        let mut heat_in = PerStructure::from_fn(|s| powers[s].value());
        let mut spreader_in = 0.0;

        for s in Structure::ALL {
            let flow = self.g_vertical[s] * (state.structures[s] - state.spreader); // ramp-lint:allow(panic-reach) -- node index is below the fixed network size by construction
            heat_in[s] -= flow;
            spreader_in += flow;
        }
        for &(x, y, g) in &self.g_lateral {
            let flow = g * (state.structures[x] - state.structures[y]); // ramp-lint:allow(panic-reach) -- node index is below the fixed network size by construction
            heat_in[x] -= flow;
            heat_in[y] += flow; // ramp-lint:allow(panic-reach) -- node index is below the fixed network size by construction
        }
        spreader_in -=
            (state.spreader - state.sink) / self.params.spreader_to_sink_resistance;

        let structures = PerStructure::from_fn(|s| {
            state.structures[s] // ramp-lint:allow(panic-reach) -- node index is below the fixed network size by construction
                .saturating_add(heat_in[s] * dt / self.capacitance[s])
        });
        let spreader = state
            .spreader
            .saturating_add(spreader_in * dt / self.params.spreader_capacitance);
        ThermalState {
            structures,
            spreader,
            sink: state.sink,
        }
    }

    /// Largest stable forward-Euler step (s): the smallest node time
    /// constant, halved for margin.
    #[must_use]
    pub fn max_stable_step(&self) -> Seconds {
        let mut min_tau = f64::MAX;
        for s in Structure::ALL {
            // ramp-lint:allow(panic-reach) -- enum-indexed `PerStructure` is total
            let g_total: f64 = self.g_vertical[s]
                + self
                    .g_lateral
                    .iter()
                    .filter(|&&(a, b, _)| a == s || b == s)
                    .map(|&(_, _, g)| g)
                    .sum::<f64>();
            min_tau = min_tau.min(self.capacitance[s] / g_total); // ramp-lint:allow(panic-reach) -- node index is below the fixed network size by construction
        }
        Seconds::new(min_tau * 0.5).expect("positive time constant") // ramp-lint:allow(panic-hygiene) -- min_tau is positive for a valid network
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramp_units::SquareMillimeters;

    fn network(area: f64) -> RcNetwork {
        let fp = Floorplan::power4(SquareMillimeters::new(area).unwrap());
        RcNetwork::build(&fp, ThermalParams::reference()).unwrap()
    }

    fn uniform_power(w: f64) -> PerStructure<Watts> {
        PerStructure::from_fn(|_| Watts::new(w).unwrap())
    }

    #[test]
    fn steady_state_energy_balance() {
        // Sink rise above ambient must equal total power × sink resistance.
        let net = network(81.0);
        let powers = uniform_power(4.0);
        let st = net.steady_state(&powers).unwrap();
        let expect = 318.15 + 28.0 * 0.8;
        assert!(
            (st.sink.value() - expect).abs() < 1e-6,
            "sink {} vs {expect}",
            st.sink.value()
        );
        assert!(st.spreader.value() > st.sink.value());
    }

    #[test]
    fn zero_power_relaxes_to_ambient() {
        let net = network(81.0);
        let st = net.steady_state(&uniform_power(0.0)).unwrap();
        for (s, t) in st.structures.iter() {
            assert!(
                (t.value() - 318.15).abs() < 1e-6,
                "{s} at {t} with no power"
            );
        }
    }

    #[test]
    fn hot_structure_is_hottest() {
        let net = network(81.0);
        let mut powers = uniform_power(1.0);
        powers[Structure::Fpu] = Watts::new(12.0).unwrap();
        let st = net.steady_state(&powers).unwrap();
        assert_eq!(st.hottest().0, Structure::Fpu);
    }

    #[test]
    fn smaller_die_runs_hotter_at_same_power() {
        let big = network(81.0).steady_state(&uniform_power(3.0)).unwrap();
        let small = network(81.0 * 0.16)
            .steady_state(&uniform_power(3.0))
            .unwrap();
        assert!(small.hottest().1.value() > big.hottest().1.value() + 5.0);
        // Same sink temperature (same total power, same sink resistance).
        assert!((small.sink.value() - big.sink.value()).abs() < 1e-6);
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let net = network(81.0);
        let powers = uniform_power(4.0);
        let target = net.steady_state(&powers).unwrap();
        // Start from the steady sink/spreader but cold structures.
        let mut st = ThermalState {
            structures: PerStructure::from_fn(|_| Kelvin::new(330.0).unwrap()),
            spreader: target.spreader,
            sink: target.sink,
        };
        let dt = Seconds::new(1e-5).unwrap();
        for _ in 0..2_000_000 {
            st = net.step(&st, &powers, dt);
        }
        for s in Structure::ALL {
            assert!(
                (st.structures[s] - target.structures[s]).abs() < 0.3,
                "{s}: {} vs {}",
                st.structures[s],
                target.structures[s]
            );
        }
    }

    #[test]
    fn forward_euler_stable_at_one_microsecond() {
        let net = network(81.0 * 0.16); // smallest die = fastest dynamics
        assert!(
            net.max_stable_step().value() > 1e-6,
            "1 µs step must be stable, limit {}",
            net.max_stable_step().value()
        );
    }

    #[test]
    fn step_conserves_monotonicity() {
        // Heating from a uniform cold start, temperatures rise toward the
        // steady state without overshooting it wildly.
        let net = network(81.0);
        let powers = uniform_power(4.0);
        let target = net.steady_state(&powers).unwrap();
        let mut st = ThermalState::uniform(Kelvin::new(318.15).unwrap());
        st.sink = target.sink;
        let dt = Seconds::MICROSECOND;
        let mut prev = st.structures[Structure::Fpu].value();
        for _ in 0..10_000 {
            st = net.step(&st, &powers, dt);
            let cur = st.structures[Structure::Fpu].value();
            assert!(cur + 1e-9 >= prev, "temperature fell while heating");
            prev = cur;
        }
        assert!(prev <= target.structures[Structure::Fpu].value() + 0.5);
    }

    #[test]
    fn sink_resistance_override() {
        let net = network(81.0).with_sink_resistance(KelvinPerWatt::new(1.6).unwrap());
        let st = net.steady_state(&uniform_power(4.0)).unwrap();
        let expect = 318.15 + 28.0 * 1.6;
        assert!((st.sink.value() - expect).abs() < 1e-6);
    }
}
