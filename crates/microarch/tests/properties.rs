//! Property-based tests of the timing simulator's architectural
//! invariants over randomly generated instruction streams.

use proptest::prelude::*;
use ramp_microarch::{
    simulate, simulate_profile_cached, Engine, MachineConfig, SimulationLength, Structure,
};
use ramp_trace::{BranchInfo, MemRef, TraceRecord, ALL_OP_CLASSES};

/// Strategy: a random but architecturally well-formed trace record.
fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        0usize..ALL_OP_CLASSES.len(),
        0u64..4096,
        proptest::option::of(0u8..72),
        proptest::option::of(0u8..72),
        0u8..72,
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(op_idx, pc_slot, src0, src1, dst, addr, taken)| {
            let op = ALL_OP_CLASSES[op_idx];
            let pc = 0x10_0000 + pc_slot * 4;
            let mut rec = TraceRecord::new(pc, op).with_sources([src0, src1]);
            if op.writes_register() {
                rec = rec.with_dest(Some(dst));
            }
            if op.is_memory() {
                rec = rec.with_mem(MemRef {
                    addr: 0x1000_0000 + (addr % (1 << 22)),
                    size: 8,
                });
            }
            if op.is_branch() {
                rec = rec.with_branch(BranchInfo {
                    taken,
                    target: 0x10_0000 + (addr % 4096) * 4,
                });
            }
            rec
        })
}

/// Source registers must have been written earlier for the run to be
/// architecturally sensible; rewrite sources to a previously written
/// register (or drop them).
fn close_dataflow(mut records: Vec<TraceRecord>) -> Vec<TraceRecord> {
    let mut written: Vec<u8> = Vec::new();
    for rec in &mut records {
        let fix = |src: Option<u8>, written: &Vec<u8>| -> Option<u8> {
            src.and_then(|s| {
                if written.is_empty() {
                    None
                } else {
                    Some(written[s as usize % written.len()])
                }
            })
        };
        let srcs = rec.sources();
        *rec = rec.with_sources([fix(srcs[0], &written), fix(srcs[1], &written)]);
        if let Some(d) = rec.dest() {
            written.push(d);
        }
    }
    records
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The engine never panics, retires everything, and respects the
    /// machine's architectural throughput bound on any well-formed trace.
    #[test]
    fn engine_total_on_arbitrary_traces(
        raw in proptest::collection::vec(arb_record(), 200..2_000)
    ) {
        let records = close_dataflow(raw);
        let cfg = MachineConfig::power4_180nm();
        let mut engine = Engine::new(&cfg, 1_000);
        for rec in &records {
            engine.step(rec);
        }
        let out = engine.finish();
        prop_assert_eq!(out.stats.instructions, records.len() as u64);
        let ipc = out.stats.ipc();
        prop_assert!(ipc > 0.0);
        prop_assert!(
            ipc <= f64::from(cfg.retire_width),
            "ipc {ipc} exceeds retire width"
        );
        // Activity factors are always within the unit interval.
        for record in out.activity.intervals() {
            for s in Structure::ALL {
                let p = record.factors[s].value();
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    /// Cutting a trace short never increases total cycles: simulation
    /// progress is monotone in trace length.
    #[test]
    fn cycles_monotone_in_trace_length(
        raw in proptest::collection::vec(arb_record(), 400..800)
    ) {
        let records = close_dataflow(raw);
        let cfg = MachineConfig::power4_180nm();
        let run = |n: usize| {
            let mut engine = Engine::new(&cfg, 1_000);
            for rec in &records[..n] {
                engine.step(rec);
            }
            engine.finish().stats.cycles
        };
        let half = run(records.len() / 2);
        let full = run(records.len());
        prop_assert!(full >= half);
    }

    /// Doubling every functional unit and width can only help (or leave
    /// unchanged) any workload's cycle count.
    #[test]
    fn wider_machine_is_never_slower(
        raw in proptest::collection::vec(arb_record(), 300..900)
    ) {
        let records = close_dataflow(raw);
        let base = MachineConfig::power4_180nm();
        let mut wide = base.clone();
        wide.int_units *= 2;
        wide.fp_units *= 2;
        wide.ls_units *= 2;
        wide.branch_units *= 2;
        wide.cr_units *= 2;
        wide.dispatch_width *= 2;
        wide.retire_width *= 2;
        wide.rob_entries *= 2;
        wide.int_regs = 32 + (wide.int_regs - 32) * 2;
        wide.fp_regs = 32 + (wide.fp_regs - 32) * 2;
        wide.mem_queue *= 2;
        wide.miss_registers *= 2;
        let run = |cfg: &MachineConfig| {
            let mut engine = Engine::new(cfg, 1_000);
            for rec in &records {
                engine.step(rec);
            }
            engine.finish().stats.cycles
        };
        let slow = run(&base);
        let fast = run(&wide);
        prop_assert!(fast <= slow, "wider machine took {fast} vs {slow}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The timing cache is an invisible optimisation: for any profile,
    /// budget, and interval length it returns exactly the trace a fresh
    /// simulation produces, and repeated lookups share one result.
    #[test]
    fn cached_timing_equals_fresh_simulation(
        bench_idx in 0usize..16,
        instructions in 5_000u64..40_000,
        interval_idx in 0usize..3,
    ) {
        let interval_cycles = [1_100u64, 1_650, 2_000][interval_idx];
        let profiles = ramp_trace::spec::all_profiles();
        let profile = &profiles[bench_idx % profiles.len()];
        let cfg = MachineConfig::power4_180nm();
        let length = SimulationLength::Instructions(instructions);

        let cached = simulate_profile_cached(&cfg, profile, length, interval_cycles);
        let fresh = simulate(
            &cfg,
            ramp_trace::TraceGenerator::new(profile),
            length,
            interval_cycles,
        );
        prop_assert_eq!(&cached.stats, &fresh.stats, "{}", profile.name);
        prop_assert_eq!(&cached.activity, &fresh.activity, "{}", profile.name);

        // A repeat lookup is a hit on the very same shared output.
        let again = simulate_profile_cached(&cfg, profile, length, interval_cycles);
        prop_assert!(std::sync::Arc::ptr_eq(&cached, &again));
    }
}

#[test]
fn simulate_respects_instruction_budget_exactly() {
    let cfg = MachineConfig::power4_180nm();
    let p = ramp_trace::spec::profile("gzip").unwrap();
    for n in [1u64, 7, 1_000, 12_345] {
        let out = simulate(
            &cfg,
            ramp_trace::TraceGenerator::new(&p),
            SimulationLength::Instructions(n),
            1_000,
        );
        assert_eq!(out.stats.instructions, n);
    }
}
