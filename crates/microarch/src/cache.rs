//! Set-associative cache models with true LRU replacement.

use crate::config::CacheConfig;

/// Outcome level of a memory-hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Hit in the first-level cache probed.
    L1,
    /// Missed L1, hit the unified L2.
    L2,
    /// Missed the entire hierarchy; served from main memory.
    Memory,
}

/// A single set-associative cache with LRU replacement.
///
/// Tags are stored per set, most-recently-used first, so a hit is a linear
/// probe over `ways` entries (small constants: 2–8 ways here).
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<u64>>,
    set_mask: u64,
    line_shift: u32,
    ways: usize,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::sets`]).
    #[must_use]
    pub fn new(config: &CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            sets: vec![Vec::with_capacity(config.ways as usize); sets as usize],
            set_mask: sets - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            ways: config.ways as usize,
            hits: 0,
            misses: 0,
        }
    }

    /// Probes and updates the cache for `addr`; returns `true` on hit.
    ///
    /// On a miss the line is filled, evicting the LRU way if the set is
    /// full.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        // ramp-lint:allow(panic-reach) -- `set_idx` is masked by the set count
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.remove(pos);
            set.insert(0, t);
            self.hits += 1;
            true
        } else {
            if set.len() == self.ways {
                set.pop();
            }
            set.insert(0, tag);
            self.misses += 1;
            false
        }
    }

    /// Total hits since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over all accesses so far (0 if never accessed).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// The data-side hierarchy: L1D backed by the unified L2.
///
/// # Examples
///
/// ```
/// use ramp_microarch::{DataHierarchy, MachineConfig, HitLevel};
/// let cfg = MachineConfig::power4_180nm();
/// let mut h = DataHierarchy::new(&cfg);
/// assert_eq!(h.access(0x1000), HitLevel::Memory); // cold miss
/// assert_eq!(h.access(0x1000), HitLevel::L1);     // now resident
/// ```
#[derive(Debug, Clone)]
pub struct DataHierarchy {
    l1: Cache,
    l2: Cache,
    l1_latency: u32,
    l2_latency: u32,
    memory_latency: u32,
}

impl DataHierarchy {
    /// Builds the hierarchy from a machine configuration.
    #[must_use]
    pub fn new(config: &crate::MachineConfig) -> Self {
        DataHierarchy {
            l1: Cache::new(&config.l1d),
            l2: Cache::new(&config.l2),
            l1_latency: config.l1d.hit_latency,
            l2_latency: config.l2.hit_latency,
            memory_latency: config.memory_latency,
        }
    }

    /// Accesses `addr`, updating both levels, and reports where it hit.
    pub fn access(&mut self, addr: u64) -> HitLevel {
        if self.l1.access(addr) {
            HitLevel::L1
        } else if self.l2.access(addr) {
            HitLevel::L2
        } else {
            HitLevel::Memory
        }
    }

    /// Load-to-use latency for a given hit level.
    #[must_use]
    pub fn latency(&self, level: HitLevel) -> u32 {
        match level {
            HitLevel::L1 => self.l1_latency,
            HitLevel::L2 => self.l2_latency,
            HitLevel::Memory => self.memory_latency,
        }
    }

    /// L1D statistics `(hits, misses)`.
    #[must_use]
    pub fn l1_stats(&self) -> (u64, u64) {
        (self.l1.hits(), self.l1.misses())
    }

    /// L2 statistics `(hits, misses)` — L2 sees only L1 misses.
    #[must_use]
    pub fn l2_stats(&self) -> (u64, u64) {
        (self.l2.hits(), self.l2.misses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;

    fn small() -> CacheConfig {
        CacheConfig {
            bytes: 1024,
            line_bytes: 64,
            ways: 2,
            hit_latency: 1,
        }
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(&small());
        assert!(!c.access(0x0));
        assert!(c.access(0x0));
        assert!(c.access(0x3f)); // same line
        assert!(!c.access(0x40)); // next line
    }

    #[test]
    fn lru_eviction_order() {
        let cfg = small(); // 8 sets, 2 ways
        let mut c = Cache::new(&cfg);
        let set_stride = 64 * 8; // same set every 512 bytes
        let a = 0u64;
        let b = a + set_stride;
        let d = b + set_stride;
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a)); // a is MRU now
        assert!(!c.access(d)); // evicts b (LRU)
        assert!(c.access(a));
        assert!(!c.access(b)); // b was evicted
    }

    #[test]
    fn miss_rate_accounting() {
        let mut c = Cache::new(&small());
        c.access(0);
        c.access(0);
        c.access(0);
        c.access(4096 * 64);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hierarchy_latencies_match_table2() {
        let h = DataHierarchy::new(&MachineConfig::power4_180nm());
        assert_eq!(h.latency(HitLevel::L1), 2);
        assert_eq!(h.latency(HitLevel::L2), 20);
        assert_eq!(h.latency(HitLevel::Memory), 102);
    }

    #[test]
    fn l2_catches_l1_capacity_misses() {
        let cfg = MachineConfig::power4_180nm();
        let mut h = DataHierarchy::new(&cfg);
        // Touch 64 KiB (2× L1D) twice: second pass should hit L2, not memory.
        let lines = (64 << 10) / u64::from(cfg.l1d.line_bytes);
        for i in 0..lines {
            h.access(i * u64::from(cfg.l1d.line_bytes));
        }
        let mut l2_hits = 0;
        for i in 0..lines {
            if h.access(i * u64::from(cfg.l1d.line_bytes)) == HitLevel::L2 {
                l2_hits += 1;
            }
        }
        assert!(
            l2_hits > lines / 2,
            "expected most second-pass accesses to hit L2, got {l2_hits}/{lines}"
        );
    }

    #[test]
    fn working_set_in_l1_stays_in_l1() {
        let cfg = MachineConfig::power4_180nm();
        let mut h = DataHierarchy::new(&cfg);
        let lines = (16 << 10) / u64::from(cfg.l1d.line_bytes);
        for pass in 0..3 {
            for i in 0..lines {
                let lvl = h.access(i * u64::from(cfg.l1d.line_bytes));
                if pass > 0 {
                    assert_eq!(lvl, HitLevel::L1);
                }
            }
        }
    }
}
