//! Per-structure activity-factor collection.
//!
//! The timing simulator records discrete work events (instructions fetched,
//! issued, executed per unit) tagged with the cycle they occur in. The
//! collector buckets them into fixed-length cycle intervals and normalises
//! each bucket by the structure's per-cycle event capacity, yielding the
//! activity factor `p ∈ [0, 1]` that both the power model and the
//! electromigration model consume.

use crate::{PerStructure, Structure};
use ramp_units::ActivityFactor;
use serde::{Deserialize, Serialize};

/// Per-cycle event capacity of each structure on the Table-2 machine.
///
/// IFU can fetch 8 instructions; IDU dispatches a 5-wide group; ISU issues
/// up to the total FU issue width (8); FXU/FPU/LSU have two pipes each; BXU
/// one branch plus one CR op.
#[must_use]
pub fn default_capacities(config: &crate::MachineConfig) -> PerStructure<u64> {
    let issue_width = u64::from(
        config.int_units + config.fp_units + config.ls_units + config.branch_units
            + config.cr_units,
    );
    PerStructure::from_fn(|s| match s {
        Structure::Ifu => u64::from(config.fetch_width),
        Structure::Idu => u64::from(config.dispatch_width),
        Structure::Isu => issue_width,
        Structure::Fxu => u64::from(config.int_units),
        Structure::Fpu => u64::from(config.fp_units),
        Structure::Lsu => u64::from(config.ls_units),
        Structure::Bxu => u64::from(config.branch_units + config.cr_units),
    })
}

/// One interval's activity factors plus utilisation metadata.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivityRecord {
    /// Activity factor per structure.
    pub factors: PerStructure<ActivityFactor>,
    /// Instructions retired in the interval.
    pub retired: u64,
}

impl ActivityRecord {
    /// IPC over the interval, given its length in cycles.
    #[must_use]
    pub fn ipc(&self, interval_cycles: u64) -> f64 {
        self.retired as f64 / interval_cycles as f64
    }
}

/// The full activity trace of one simulation: a sequence of equal-length
/// intervals.
///
/// # Examples
///
/// ```
/// use ramp_microarch::{simulate, MachineConfig, SimulationLength, Structure};
/// use ramp_trace::{spec, TraceGenerator};
/// let cfg = MachineConfig::power4_180nm();
/// let profile = spec::profile("gzip").unwrap();
/// let out = simulate(&cfg, TraceGenerator::new(&profile),
///                    SimulationLength::Instructions(20_000), 1_000);
/// let trace = &out.activity;
/// assert!(trace.intervals().len() > 1);
/// let avg = trace.average();
/// assert!(avg[Structure::Ifu].value() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityTrace {
    interval_cycles: u64,
    intervals: Vec<ActivityRecord>,
}

impl ActivityTrace {
    /// Interval length in cycles.
    #[must_use]
    pub fn interval_cycles(&self) -> u64 {
        self.interval_cycles
    }

    /// The recorded intervals in time order.
    #[must_use]
    pub fn intervals(&self) -> &[ActivityRecord] {
        &self.intervals
    }

    /// Time-average activity factor per structure over the whole trace.
    #[must_use]
    pub fn average(&self) -> PerStructure<ActivityFactor> {
        if self.intervals.is_empty() {
            return PerStructure::from_fn(|_| ActivityFactor::IDLE);
        }
        PerStructure::from_fn(|s| {
            let sum: f64 = self
                .intervals
                .iter()
                // ramp-lint:allow(panic-reach) -- enum-indexed `PerStructure` is total
                .map(|r| r.factors[s].value())
                .sum();
            ActivityFactor::new(sum / self.intervals.len() as f64)
                .expect("mean of unit-interval values is in the unit interval") // ramp-lint:allow(panic-hygiene) -- mean of unit-interval samples stays in the unit interval
        })
    }

    /// Pointwise-maximum activity factor per structure over the trace —
    /// one ingredient of the paper's worst-case operating point.
    #[must_use]
    pub fn peak(&self) -> PerStructure<ActivityFactor> {
        PerStructure::from_fn(|s| {
            self.intervals
                .iter()
                // ramp-lint:allow(panic-reach) -- enum-indexed `PerStructure` is total
                .map(|r| r.factors[s])
                .fold(ActivityFactor::IDLE, ActivityFactor::max)
        })
    }
}

/// Accumulates raw events and produces an [`ActivityTrace`].
#[derive(Debug, Clone)]
pub struct ActivityCollector {
    interval_cycles: u64,
    capacities: PerStructure<u64>,
    /// events[bucket][structure]
    events: Vec<PerStructure<u64>>,
    retired: Vec<u64>,
}

impl ActivityCollector {
    /// Creates a collector bucketing by `interval_cycles`, normalising by
    /// `capacities` events/cycle.
    ///
    /// # Panics
    ///
    /// Panics if `interval_cycles` is zero or any capacity is zero.
    #[must_use]
    pub fn new(interval_cycles: u64, capacities: PerStructure<u64>) -> Self {
        assert!(interval_cycles > 0, "interval must be positive");
        assert!(
            capacities.as_array().iter().all(|&c| c > 0),
            "capacities must be positive"
        );
        ActivityCollector {
            interval_cycles,
            capacities,
            events: Vec::new(),
            retired: Vec::new(),
        }
    }

    fn bucket_mut(&mut self, cycle: u64) -> usize {
        let bucket = (cycle / self.interval_cycles) as usize;
        if bucket >= self.events.len() {
            self.events.resize(bucket + 1, PerStructure::default());
            self.retired.resize(bucket + 1, 0);
        }
        bucket
    }

    /// Records `count` work events on `structure` at `cycle`.
    pub fn record(&mut self, structure: Structure, cycle: u64, count: u64) {
        let b = self.bucket_mut(cycle);
        // ramp-lint:allow(panic-reach) -- the bucket index is clamped to the bucket count
        self.events[b][structure] += count;
    }

    /// Records an instruction retirement at `cycle`.
    pub fn record_retire(&mut self, cycle: u64, count: u64) {
        let b = self.bucket_mut(cycle);
        // ramp-lint:allow(panic-reach) -- the bucket index is clamped to the bucket count
        self.retired[b] += count;
    }

    /// Finalises into an [`ActivityTrace`], truncating the (partial) last
    /// bucket if `end_cycle` does not fall on an interval boundary.
    #[must_use]
    pub fn finish(self, end_cycle: u64) -> ActivityTrace {
        let full_buckets = (end_cycle / self.interval_cycles) as usize;
        let n = full_buckets.min(self.events.len()).max(
            // Keep at least one bucket for very short runs so downstream
            // consumers always see a non-empty trace.
            usize::from(!self.events.is_empty()),
        );
        let denom = self.interval_cycles;
        let intervals = self
            .events
            .iter()
            .take(n)
            .zip(self.retired.iter())
            .map(|(ev, &ret)| ActivityRecord {
                factors: PerStructure::from_fn(|s| {
                    // ramp-lint:allow(panic-reach) -- enum-indexed `PerStructure` is total
                    ActivityFactor::from_events(ev[s], self.capacities[s] * denom)
                }),
                retired: ret,
            })
            .collect();
        ActivityTrace {
            interval_cycles: denom,
            intervals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;

    fn caps() -> PerStructure<u64> {
        default_capacities(&MachineConfig::power4_180nm())
    }

    #[test]
    fn capacities_match_machine_widths() {
        let c = caps();
        assert_eq!(c[Structure::Ifu], 8);
        assert_eq!(c[Structure::Idu], 5);
        assert_eq!(c[Structure::Isu], 8);
        assert_eq!(c[Structure::Fxu], 2);
        assert_eq!(c[Structure::Lsu], 2);
        assert_eq!(c[Structure::Bxu], 2);
    }

    #[test]
    fn buckets_and_normalises() {
        let mut col = ActivityCollector::new(100, caps());
        // 100 int ops in the first interval: 100 / (2*100) = 0.5.
        for cyc in 0..100 {
            col.record(Structure::Fxu, cyc, 1);
        }
        col.record(Structure::Fxu, 150, 60); // second interval: 60/200 = 0.3
        let trace = col.finish(200);
        assert_eq!(trace.intervals().len(), 2);
        assert!((trace.intervals()[0].factors[Structure::Fxu].value() - 0.5).abs() < 1e-12);
        assert!((trace.intervals()[1].factors[Structure::Fxu].value() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn clamps_overflow_to_one() {
        let mut col = ActivityCollector::new(10, caps());
        col.record(Structure::Bxu, 5, 1000);
        let trace = col.finish(10);
        assert_eq!(trace.intervals()[0].factors[Structure::Bxu].value(), 1.0);
    }

    #[test]
    fn average_and_peak() {
        let mut col = ActivityCollector::new(10, caps());
        col.record(Structure::Lsu, 0, 20); // interval 0: 20/20 = 1.0
        col.record(Structure::Lsu, 10, 10); // interval 1: 0.5
        let trace = col.finish(20);
        assert!((trace.average()[Structure::Lsu].value() - 0.75).abs() < 1e-12);
        assert_eq!(trace.peak()[Structure::Lsu].value(), 1.0);
    }

    #[test]
    fn partial_last_bucket_dropped() {
        let mut col = ActivityCollector::new(100, caps());
        col.record(Structure::Ifu, 0, 10);
        col.record(Structure::Ifu, 150, 10);
        let trace = col.finish(150); // second bucket incomplete
        assert_eq!(trace.intervals().len(), 1);
    }

    #[test]
    fn retire_and_ipc() {
        let mut col = ActivityCollector::new(100, caps());
        col.record_retire(50, 150);
        let trace = col.finish(100);
        assert!((trace.intervals()[0].ipc(100) - 1.5).abs() < 1e-12);
    }
}
