//! Trace-driven out-of-order superscalar timing simulator (Turandot-like).
//!
//! This crate stands in for IBM's Turandot performance model in the paper's
//! pipeline. It consumes [`ramp_trace`] instruction streams, models the
//! Table-2 POWER4-like 8-way machine, and produces both aggregate
//! statistics (IPC, miss rates, mispredict rate) and — the output the rest
//! of the stack actually needs — per-interval **activity factors** for the
//! seven tracked microarchitectural structures.
//!
//! # Quick start
//!
//! ```
//! use ramp_microarch::{simulate, MachineConfig, SimulationLength, Structure};
//! use ramp_trace::{spec, TraceGenerator};
//!
//! let cfg = MachineConfig::power4_180nm();
//! let profile = spec::profile("gzip").unwrap();
//! let out = simulate(&cfg, TraceGenerator::new(&profile),
//!                    SimulationLength::Instructions(20_000), 1_100);
//! println!("IPC = {:.2}", out.stats.ipc());
//! println!("LSU activity = {:.2}", out.activity.average()[Structure::Lsu].value());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod activity;
mod bpred;
mod cache;
mod config;
mod engine;
mod stats;
mod structures;
mod timing_cache;

pub use activity::{default_capacities, ActivityCollector, ActivityRecord, ActivityTrace};
pub use bpred::GsharePredictor;
pub use cache::{Cache, DataHierarchy, HitLevel};
pub use config::{CacheConfig, MachineConfig};
pub use engine::{simulate, Engine, SimulationLength, SimulationOutput};
pub use stats::SimStats;
pub use structures::{PerStructure, Structure};
pub use timing_cache::{
    clear_timing_cache, simulate_profile_cached, simulate_profile_cached_traced,
    timing_cache_class_stats, timing_cache_stats, CacheOutcome, TimingCacheClassStats,
    TimingCacheStats, TIMING_CACHE_CAPACITY,
};
