//! Aggregate simulation statistics.

use serde::{Deserialize, Serialize};

/// Summary statistics of one timing-simulation run.
///
/// # Examples
///
/// ```
/// use ramp_microarch::{simulate, MachineConfig, SimulationLength};
/// use ramp_trace::{spec, TraceGenerator};
/// let cfg = MachineConfig::power4_180nm();
/// let p = spec::profile("bzip2").unwrap();
/// let out = simulate(&cfg, TraceGenerator::new(&p),
///                    SimulationLength::Instructions(50_000), 1_100);
/// assert!(out.stats.ipc() > 0.5);
/// assert!(out.stats.ipc() < 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Total cycles from first fetch to last retirement.
    pub cycles: u64,
    /// Conditional/unconditional branches executed.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 misses (data side).
    pub l2_misses: u64,
    /// L1I misses.
    pub l1i_misses: u64,
    /// Estimated wrong-path instructions fetched after mispredictions.
    pub wrong_path_fetches: u64,
    /// Fetch cycles lost to I-cache fill (sequential and redirect misses).
    pub icache_stall_cycles: u64,
    /// Fetch cycles lost waiting for mispredict redirects.
    pub redirect_stall_cycles: u64,
    /// Dispatches delayed by a full reorder buffer.
    pub rob_stalls: u64,
    /// Dispatches delayed by rename-register exhaustion (either class).
    pub rename_stalls: u64,
    /// Dispatches delayed by a full memory queue.
    pub memq_stalls: u64,
}

impl SimStats {
    /// Retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Branch mispredict rate.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// L1D misses per kilo-instruction.
    #[must_use]
    pub fn l1d_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l1d_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// L2 (data) misses per kilo-instruction.
    #[must_use]
    pub fn l2_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l2_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Fraction of all cycles the front end spent stalled (I-cache fills
    /// plus mispredict redirects).
    #[must_use]
    pub fn frontend_stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.icache_stall_cycles + self.redirect_stall_cycles) as f64
                / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.l1d_mpki(), 0.0);
    }

    #[test]
    fn derived_rates() {
        let s = SimStats {
            instructions: 1000,
            cycles: 500,
            branches: 100,
            mispredicts: 5,
            l1d_misses: 20,
            l2_misses: 2,
            ..Default::default()
        };
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.05).abs() < 1e-12);
        assert!((s.l1d_mpki() - 20.0).abs() < 1e-12);
        assert!((s.l2_mpki() - 2.0).abs() < 1e-12);
    }
}
