//! Process-wide cache of timing-pass results.
//!
//! The timing simulation of a benchmark depends only on the machine
//! configuration, the benchmark profile (trace generation is a pure
//! function of the profile, seed included), the simulation length, and
//! the activity-sampling interval. Study sweeps evaluate the same
//! benchmark at several technology nodes, and nodes that share a clock
//! frequency share the interval length too — so their timing passes are
//! byte-identical and worth computing once.
//!
//! The cache is keyed by fingerprints of the serialized machine config
//! and profile plus the two scalar parameters, holds results behind
//! `Arc` so hits are O(1) clones, evicts least-recently-used entries
//! beyond a fixed capacity, and deduplicates in-flight computations: if
//! two workers ask for the same key simultaneously, one simulates and
//! the other blocks on the same [`OnceLock`] rather than redoing the
//! work. Results are bit-identical to a fresh [`simulate`] call by
//! construction — the cache stores, it never recomputes or approximates.

use crate::engine::{simulate, SimulationLength, SimulationOutput};
use crate::MachineConfig;
use ramp_trace::{BenchmarkProfile, TraceGenerator};
use std::collections::HashMap; // ramp-lint:allow(determinism) -- keyed lookup only; iteration order never reaches output
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum retained entries. A full 16-benchmark × 5-node study touches
/// 64 distinct keys (the two 65 nm points share a frequency), so the
/// whole sweep fits with room for ablation variants.
pub const TIMING_CACHE_CAPACITY: usize = 128;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    machine: u64,
    profile: u64,
    length: (bool, u64),
    interval_cycles: u64,
}

/// FNV-1a over the canonical JSON encoding; collisions are astronomically
/// unlikely across the handful of configs a process ever touches.
fn fingerprint<T: serde::Serialize + ?Sized>(value: &T) -> u64 {
    let json = serde_json::to_string(value).expect("config types serialize infallibly"); // ramp-lint:allow(panic-hygiene) -- config types contain no non-serializable values
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Entry {
    cell: Arc<OnceLock<Arc<SimulationOutput>>>,
    last_used: u64,
}

struct CacheState {
    map: HashMap<Key, Entry>, // ramp-lint:allow(determinism) -- keyed lookup only; iteration order never reaches output
    tick: u64,
}

static CACHE: Mutex<Option<CacheState>> = Mutex::new(None);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Counters describing cache effectiveness, for study summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimingCacheStats {
    /// Lookups that found an existing (possibly in-flight) entry.
    pub hits: u64,
    /// Lookups that had to run the simulation.
    pub misses: u64,
    /// Entries currently retained.
    pub entries: usize,
}

/// Current process-wide cache counters.
pub fn timing_cache_stats() -> TimingCacheStats {
    let guard = CACHE.lock().expect("timing cache lock"); // ramp-lint:allow(panic-hygiene) -- lock poisoning implies a worker already panicked
    TimingCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        entries: guard.as_ref().map_or(0, |s| s.map.len()),
    }
}

/// Empties the cache and zeroes the counters (tests, benchmarks).
pub fn clear_timing_cache() {
    let mut guard = CACHE.lock().expect("timing cache lock"); // ramp-lint:allow(panic-hygiene) -- lock poisoning implies a worker already panicked
    *guard = None;
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// Runs (or replays) the timing pass for a benchmark profile.
///
/// Returns exactly what
/// `simulate(machine, TraceGenerator::new(profile), length, interval_cycles)`
/// would, behind an `Arc`; the first caller per key simulates and later
/// callers share the stored result. Concurrent callers with the same key
/// block on the in-flight computation instead of duplicating it.
pub fn simulate_profile_cached(
    machine: &MachineConfig,
    profile: &BenchmarkProfile,
    length: SimulationLength,
    interval_cycles: u64,
) -> Arc<SimulationOutput> {
    let key = Key {
        machine: fingerprint(machine),
        profile: fingerprint(profile),
        length: match length {
            SimulationLength::Instructions(n) => (false, n),
            SimulationLength::Cycles(c) => (true, c),
        },
        interval_cycles,
    };

    let cell = {
        let mut guard = CACHE.lock().expect("timing cache lock"); // ramp-lint:allow(panic-hygiene) -- lock poisoning implies a worker already panicked
        let state = guard.get_or_insert_with(|| CacheState {
            map: HashMap::new(), // ramp-lint:allow(determinism) -- keyed lookup only; iteration order never reaches output
            tick: 0,
        });
        state.tick += 1;
        let tick = state.tick;
        let cell = match state.map.get_mut(&key) {
            Some(entry) => {
                HITS.fetch_add(1, Ordering::Relaxed);
                ramp_obs::counter("timing_cache.hits").incr();
                entry.last_used = tick;
                Arc::clone(&entry.cell)
            }
            None => {
                MISSES.fetch_add(1, Ordering::Relaxed);
                ramp_obs::counter("timing_cache.misses").incr();
                let cell = Arc::new(OnceLock::new());
                state.map.insert(
                    key,
                    Entry {
                        cell: Arc::clone(&cell),
                        last_used: tick,
                    },
                );
                cell
            }
        };
        while state.map.len() > TIMING_CACHE_CAPACITY {
            // Evict the least-recently-used completed entry; in-flight
            // entries survive because their `Arc` is held by a worker
            // anyway.
            let victim = state
                .map
                .iter()
                .filter(|(k, e)| e.cell.get().is_some() && **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    state.map.remove(&k);
                }
                None => break,
            }
        }
        ramp_obs::gauge("timing_cache.entries").set(state.map.len() as f64);
        cell
    };

    // The simulation itself runs outside the map lock so other keys
    // proceed in parallel; `get_or_init` serializes same-key callers.
    Arc::clone(cell.get_or_init(|| {
        let in_flight = ramp_obs::gauge("timing_cache.in_flight");
        in_flight.add(1.0);
        let span = ramp_obs::span!("timing_sim", "interval_cycles={interval_cycles}");
        let output = Arc::new(simulate(
            machine,
            TraceGenerator::new(profile),
            length,
            interval_cycles,
        ));
        drop(span);
        in_flight.add(-1.0);
        output
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramp_trace::spec;

    /// Serializes access across the tests in this module: they observe
    /// and reset process-global counters.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn hit_returns_identical_output() {
        let _guard = locked();
        clear_timing_cache();
        let machine = MachineConfig::power4_180nm();
        let profile = spec::profile("gzip").unwrap();
        let fresh = simulate(
            &machine,
            TraceGenerator::new(&profile),
            SimulationLength::Instructions(20_000),
            1_100,
        );
        let a = simulate_profile_cached(
            &machine,
            &profile,
            SimulationLength::Instructions(20_000),
            1_100,
        );
        let b = simulate_profile_cached(
            &machine,
            &profile,
            SimulationLength::Instructions(20_000),
            1_100,
        );
        assert!(Arc::ptr_eq(&a, &b), "second lookup shares the stored Arc");
        assert_eq!(format!("{:?}", *a), format!("{fresh:?}"));
        let stats = timing_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn distinct_interval_lengths_are_distinct_keys() {
        let _guard = locked();
        clear_timing_cache();
        let machine = MachineConfig::power4_180nm();
        let profile = spec::profile("ammp").unwrap();
        let a = simulate_profile_cached(
            &machine,
            &profile,
            SimulationLength::Instructions(10_000),
            1_100,
        );
        let b = simulate_profile_cached(
            &machine,
            &profile,
            SimulationLength::Instructions(10_000),
            1_650,
        );
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(timing_cache_stats().misses, 2);
    }

    #[test]
    fn concurrent_same_key_simulates_once() {
        let _guard = locked();
        clear_timing_cache();
        let machine = MachineConfig::power4_180nm();
        let profile = spec::profile("gcc").unwrap();
        let outputs: Vec<Arc<SimulationOutput>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        simulate_profile_cached(
                            &machine,
                            &profile,
                            SimulationLength::Instructions(15_000),
                            2_000,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for out in &outputs[1..] {
            assert!(Arc::ptr_eq(&outputs[0], out));
        }
        let stats = timing_cache_stats();
        assert_eq!(stats.misses, 1, "one thread simulated");
        assert_eq!(stats.hits, 7, "the rest shared it");
    }

    #[test]
    fn eviction_keeps_recently_used_entries() {
        let _guard = locked();
        clear_timing_cache();
        let machine = MachineConfig::power4_180nm();
        let profile = spec::profile("mesa").unwrap();
        // Fill past capacity using distinct interval lengths as keys.
        for i in 0..(TIMING_CACHE_CAPACITY as u64 + 8) {
            simulate_profile_cached(
                &machine,
                &profile,
                SimulationLength::Instructions(2_000),
                1_000 + i,
            );
        }
        let stats = timing_cache_stats();
        assert!(stats.entries <= TIMING_CACHE_CAPACITY);
        // The most recent key must still be resident: re-requesting it is
        // a hit, not a re-simulation.
        let misses_before = stats.misses;
        simulate_profile_cached(
            &machine,
            &profile,
            SimulationLength::Instructions(2_000),
            1_000 + TIMING_CACHE_CAPACITY as u64 + 7,
        );
        assert_eq!(timing_cache_stats().misses, misses_before);
    }
}
