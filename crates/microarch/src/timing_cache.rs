//! Process-wide cache of timing-pass results.
//!
//! The timing simulation of a benchmark depends only on the machine
//! configuration, the benchmark profile (trace generation is a pure
//! function of the profile, seed included), the simulation length, and
//! the activity-sampling interval. Study sweeps evaluate the same
//! benchmark at several technology nodes, and nodes that share a clock
//! frequency share the interval length too — so their timing passes are
//! byte-identical and worth computing once.
//!
//! The cache is keyed by fingerprints of the serialized machine config
//! and profile plus the two scalar parameters, holds results behind
//! `Arc` so hits are O(1) clones, evicts least-recently-used entries
//! beyond a fixed capacity, and deduplicates in-flight computations: if
//! two workers ask for the same key simultaneously, one simulates and
//! the other blocks on the same [`OnceLock`] rather than redoing the
//! work. Results are bit-identical to a fresh [`simulate`] call by
//! construction — the cache stores, it never recomputes or approximates.

use crate::engine::{simulate, SimulationLength, SimulationOutput};
use crate::MachineConfig;
use ramp_trace::{BenchmarkProfile, TraceGenerator};
use std::collections::BTreeMap;
use std::collections::HashMap; // ramp-lint:allow(determinism) -- keyed lookup only; iteration order never reaches output
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum retained entries. A full 16-benchmark × 5-node study touches
/// 64 distinct keys (the two 65 nm points share a frequency), so the
/// whole sweep fits with room for ablation variants.
pub const TIMING_CACHE_CAPACITY: usize = 128;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    machine: u64,
    profile: u64,
    length: (bool, u64),
    interval_cycles: u64,
}

impl Key {
    /// Canonical printable form of the full key: the two config
    /// fingerprints plus the scalar parameters. This is what run
    /// manifests record so a surprising hit rate can be traced back to
    /// the exact lookups that produced it.
    fn normalized(&self) -> String {
        format!(
            "m={:016x}/p={:016x}/{}/ic={}",
            self.machine,
            self.profile,
            length_label(self.length),
            self.interval_cycles
        )
    }

    /// The key *class*: the scalar parameters with the per-config
    /// fingerprints dropped. Lookups in one class differ only by machine
    /// or profile, so per-class hit/miss counters show which simulation
    /// shapes share work (nodes with a common clock) and which never can.
    fn class(&self) -> String {
        format!("{}/ic={}", length_label(self.length), self.interval_cycles)
    }
}

fn length_label(length: (bool, u64)) -> String {
    let (cycles, n) = length;
    format!("len={}{n}", if cycles { "c" } else { "i" })
}

/// FNV-1a over the canonical JSON encoding; collisions are astronomically
/// unlikely across the handful of configs a process ever touches.
fn fingerprint<T: serde::Serialize + ?Sized>(value: &T) -> u64 {
    let json = serde_json::to_string(value).expect("config types serialize infallibly"); // ramp-lint:allow(panic-hygiene) -- config types contain no non-serializable values
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Entry {
    cell: Arc<OnceLock<Arc<SimulationOutput>>>,
    last_used: u64,
}

struct CacheState {
    map: HashMap<Key, Entry>, // ramp-lint:allow(determinism) -- keyed lookup only; iteration order never reaches output
    tick: u64,
}

static CACHE: Mutex<Option<CacheState>> = Mutex::new(None);
static HITS: AtomicU64 = AtomicU64::new(0); // ramp-lint:allow(atomic-ordering) -- monotone Relaxed telemetry counters
static MISSES: AtomicU64 = AtomicU64::new(0); // ramp-lint:allow(atomic-ordering) -- monotone Relaxed telemetry counters
/// Per-key-class (hits, misses), keyed by [`Key::class`]. BTreeMap so
/// snapshots come out in a stable order.
static CLASS_STATS: Mutex<BTreeMap<String, (u64, u64)>> = Mutex::new(BTreeMap::new());

/// Whether a [`simulate_profile_cached_traced`] lookup was served from
/// the cache or had to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The key was already resident (or in flight on another worker).
    Hit,
    /// This lookup ran (or is running) the simulation.
    Miss,
}

impl CacheOutcome {
    /// Stable lowercase label (`"hit"` / `"miss"`), as used in span args.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
        }
    }
}

/// One key class's cache counters (see [`timing_cache_class_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingCacheClassStats {
    /// The class label: simulation length + interval cycles, e.g.
    /// `len=i200000/ic=1100`.
    pub class: String,
    /// Lookups in this class served from the cache.
    pub hits: u64,
    /// Lookups in this class that simulated.
    pub misses: u64,
}

/// Per-key-class hit/miss counters, in stable (sorted) class order.
/// A class groups lookups by simulation length and interval cycles —
/// the parameters nodes can share — so a low aggregate hit rate
/// decomposes into "which shapes never coalesce".
pub fn timing_cache_class_stats() -> Vec<TimingCacheClassStats> {
    let guard = CLASS_STATS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    guard
        .iter()
        .map(|(class, &(hits, misses))| TimingCacheClassStats {
            class: class.clone(),
            hits,
            misses,
        })
        .collect()
}

/// Counters describing cache effectiveness, for study summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimingCacheStats {
    /// Lookups that found an existing (possibly in-flight) entry.
    pub hits: u64,
    /// Lookups that had to run the simulation.
    pub misses: u64,
    /// Entries currently retained.
    pub entries: usize,
}

/// Current process-wide cache counters.
pub fn timing_cache_stats() -> TimingCacheStats {
    let guard = CACHE.lock().expect("timing cache lock"); // ramp-lint:allow(panic-hygiene) -- lock poisoning implies a worker already panicked
    TimingCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        entries: guard.as_ref().map_or(0, |s| s.map.len()),
    }
}

/// Empties the cache and zeroes the counters (tests, benchmarks).
pub fn clear_timing_cache() {
    let mut guard = CACHE.lock().expect("timing cache lock"); // ramp-lint:allow(panic-hygiene) -- lock poisoning implies a worker already panicked
    *guard = None;
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    CLASS_STATS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
}

/// Runs (or replays) the timing pass for a benchmark profile.
///
/// Returns exactly what
/// `simulate(machine, TraceGenerator::new(profile), length, interval_cycles)`
/// would, behind an `Arc`; the first caller per key simulates and later
/// callers share the stored result. Concurrent callers with the same key
/// block on the in-flight computation instead of duplicating it.
pub fn simulate_profile_cached(
    machine: &MachineConfig,
    profile: &BenchmarkProfile,
    length: SimulationLength,
    interval_cycles: u64,
) -> Arc<SimulationOutput> {
    simulate_profile_cached_traced(machine, profile, length, interval_cycles).0
}

/// [`simulate_profile_cached`] plus cache visibility: also returns
/// whether this lookup hit, and the normalized cache key it resolved to
/// (for span args and run-manifest cache stats).
pub fn simulate_profile_cached_traced(
    machine: &MachineConfig,
    profile: &BenchmarkProfile,
    length: SimulationLength,
    interval_cycles: u64,
) -> (Arc<SimulationOutput>, CacheOutcome, String) {
    let key = Key {
        machine: fingerprint(machine),
        profile: fingerprint(profile),
        length: match length {
            SimulationLength::Instructions(n) => (false, n),
            SimulationLength::Cycles(c) => (true, c),
        },
        interval_cycles,
    };

    let (cell, outcome) = {
        let mut guard = CACHE.lock().expect("timing cache lock"); // ramp-lint:allow(panic-hygiene) -- lock poisoning implies a worker already panicked
        let state = guard.get_or_insert_with(|| CacheState {
            map: HashMap::new(), // ramp-lint:allow(determinism) -- keyed lookup only; iteration order never reaches output
            tick: 0,
        });
        state.tick += 1;
        let tick = state.tick;
        let (cell, outcome) = match state.map.get_mut(&key) {
            Some(entry) => {
                HITS.fetch_add(1, Ordering::Relaxed);
                ramp_obs::counter("timing_cache.hits").incr();
                entry.last_used = tick;
                (Arc::clone(&entry.cell), CacheOutcome::Hit)
            }
            None => {
                MISSES.fetch_add(1, Ordering::Relaxed);
                ramp_obs::counter("timing_cache.misses").incr();
                let cell = Arc::new(OnceLock::new());
                state.map.insert(
                    key,
                    Entry {
                        cell: Arc::clone(&cell),
                        last_used: tick,
                    },
                );
                (cell, CacheOutcome::Miss)
            }
        };
        {
            let mut classes = CLASS_STATS
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let slot = classes.entry(key.class()).or_insert((0, 0));
            match outcome {
                CacheOutcome::Hit => slot.0 += 1,
                CacheOutcome::Miss => slot.1 += 1,
            }
        }
        while state.map.len() > TIMING_CACHE_CAPACITY {
            // Evict the least-recently-used completed entry; in-flight
            // entries survive because their `Arc` is held by a worker
            // anyway.
            let victim = state
                .map
                .iter()
                .filter(|(k, e)| e.cell.get().is_some() && **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    state.map.remove(&k);
                }
                None => break,
            }
        }
        ramp_obs::gauge("timing_cache.entries").set(state.map.len() as f64);
        (cell, outcome)
    };

    // The simulation itself runs outside the map lock so other keys
    // proceed in parallel; `get_or_init` serializes same-key callers.
    let output = Arc::clone(cell.get_or_init(|| {
        let in_flight = ramp_obs::gauge("timing_cache.in_flight");
        in_flight.add(1.0);
        let span = ramp_obs::span!("timing_sim", "interval_cycles={interval_cycles}");
        let output = Arc::new(simulate(
            machine,
            TraceGenerator::new(profile),
            length,
            interval_cycles,
        ));
        drop(span);
        in_flight.add(-1.0);
        output
    }));
    (output, outcome, key.normalized())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramp_trace::spec;

    /// Serializes access across the tests in this module: they observe
    /// and reset process-global counters.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn hit_returns_identical_output() {
        let _guard = locked();
        clear_timing_cache();
        let machine = MachineConfig::power4_180nm();
        let profile = spec::profile("gzip").unwrap();
        let fresh = simulate(
            &machine,
            TraceGenerator::new(&profile),
            SimulationLength::Instructions(20_000),
            1_100,
        );
        let a = simulate_profile_cached(
            &machine,
            &profile,
            SimulationLength::Instructions(20_000),
            1_100,
        );
        let b = simulate_profile_cached(
            &machine,
            &profile,
            SimulationLength::Instructions(20_000),
            1_100,
        );
        assert!(Arc::ptr_eq(&a, &b), "second lookup shares the stored Arc");
        assert_eq!(format!("{:?}", *a), format!("{fresh:?}"));
        let stats = timing_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn distinct_interval_lengths_are_distinct_keys() {
        let _guard = locked();
        clear_timing_cache();
        let machine = MachineConfig::power4_180nm();
        let profile = spec::profile("ammp").unwrap();
        let a = simulate_profile_cached(
            &machine,
            &profile,
            SimulationLength::Instructions(10_000),
            1_100,
        );
        let b = simulate_profile_cached(
            &machine,
            &profile,
            SimulationLength::Instructions(10_000),
            1_650,
        );
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(timing_cache_stats().misses, 2);
    }

    #[test]
    fn concurrent_same_key_simulates_once() {
        let _guard = locked();
        clear_timing_cache();
        let machine = MachineConfig::power4_180nm();
        let profile = spec::profile("gcc").unwrap();
        let outputs: Vec<Arc<SimulationOutput>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        simulate_profile_cached(
                            &machine,
                            &profile,
                            SimulationLength::Instructions(15_000),
                            2_000,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for out in &outputs[1..] {
            assert!(Arc::ptr_eq(&outputs[0], out));
        }
        let stats = timing_cache_stats();
        assert_eq!(stats.misses, 1, "one thread simulated");
        assert_eq!(stats.hits, 7, "the rest shared it");
    }

    #[test]
    fn traced_lookup_reports_outcome_key_and_classes() {
        let _guard = locked();
        clear_timing_cache();
        let machine = MachineConfig::power4_180nm();
        let profile = spec::profile("gzip").unwrap();
        let (_, first, key_a) = simulate_profile_cached_traced(
            &machine,
            &profile,
            SimulationLength::Instructions(5_000),
            1_100,
        );
        let (_, second, key_b) = simulate_profile_cached_traced(
            &machine,
            &profile,
            SimulationLength::Instructions(5_000),
            1_100,
        );
        assert_eq!(first, CacheOutcome::Miss);
        assert_eq!(second, CacheOutcome::Hit);
        assert_eq!(first.as_str(), "miss");
        assert_eq!(key_a, key_b, "same lookup normalizes to the same key");
        assert!(key_a.contains("/len=i5000/ic=1100"), "{key_a}");
        // A different interval is a different class.
        let (_, _, key_c) = simulate_profile_cached_traced(
            &machine,
            &profile,
            SimulationLength::Instructions(5_000),
            1_650,
        );
        assert_ne!(key_a, key_c);
        let classes = timing_cache_class_stats();
        assert_eq!(classes.len(), 2);
        let c1100 = classes
            .iter()
            .find(|c| c.class == "len=i5000/ic=1100")
            .expect("class present");
        assert_eq!((c1100.hits, c1100.misses), (1, 1));
        let c1650 = classes
            .iter()
            .find(|c| c.class == "len=i5000/ic=1650")
            .expect("class present");
        assert_eq!((c1650.hits, c1650.misses), (0, 1));
    }

    #[test]
    fn eviction_keeps_recently_used_entries() {
        let _guard = locked();
        clear_timing_cache();
        let machine = MachineConfig::power4_180nm();
        let profile = spec::profile("mesa").unwrap();
        // Fill past capacity using distinct interval lengths as keys.
        for i in 0..(TIMING_CACHE_CAPACITY as u64 + 8) {
            simulate_profile_cached(
                &machine,
                &profile,
                SimulationLength::Instructions(2_000),
                1_000 + i,
            );
        }
        let stats = timing_cache_stats();
        assert!(stats.entries <= TIMING_CACHE_CAPACITY);
        // The most recent key must still be resident: re-requesting it is
        // a hit, not a re-simulation.
        let misses_before = stats.misses;
        simulate_profile_cached(
            &machine,
            &profile,
            SimulationLength::Instructions(2_000),
            1_000 + TIMING_CACHE_CAPACITY as u64 + 7,
        );
        assert_eq!(timing_cache_stats().misses, misses_before);
    }
}
