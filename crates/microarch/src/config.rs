//! Machine configuration for the Table-2 POWER4-like base processor.

use serde::{Deserialize, Serialize};

/// Cache geometry and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Associativity (ways).
    pub ways: u32,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero-sized or non-dividing).
    #[must_use]
    pub fn sets(&self) -> u64 {
        assert!(self.bytes > 0 && self.line_bytes > 0 && self.ways > 0);
        let sets = self.bytes / (u64::from(self.line_bytes) * u64::from(self.ways));
        assert!(sets > 0, "cache too small for its ways/line size");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// Full configuration of the simulated machine (Table 2 defaults).
///
/// Construct with [`MachineConfig::power4_180nm`] and adjust fields as
/// needed; [`validate`](MachineConfig::validate) checks consistency.
///
/// # Examples
///
/// ```
/// use ramp_microarch::MachineConfig;
/// let cfg = MachineConfig::power4_180nm();
/// assert_eq!(cfg.fetch_width, 8);
/// assert_eq!(cfg.rob_entries, 150);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions dispatched (one group) per cycle.
    pub dispatch_width: u32,
    /// Instructions retired (one group) per cycle.
    pub retire_width: u32,
    /// Reorder-buffer entries.
    pub rob_entries: u32,
    /// Physical integer registers (architectural + rename).
    pub int_regs: u32,
    /// Physical floating-point registers (architectural + rename).
    pub fp_regs: u32,
    /// Memory (load/store) queue entries.
    pub mem_queue: u32,
    /// Number of integer units.
    pub int_units: u32,
    /// Number of floating-point units.
    pub fp_units: u32,
    /// Number of load-store units.
    pub ls_units: u32,
    /// Number of branch units.
    pub branch_units: u32,
    /// Number of condition-register logical units.
    pub cr_units: u32,
    /// Integer add/logical latency.
    pub int_alu_latency: u32,
    /// Integer multiply latency.
    pub int_mul_latency: u32,
    /// Integer divide latency.
    pub int_div_latency: u32,
    /// FP default (add/mul) latency.
    pub fp_latency: u32,
    /// FP divide latency.
    pub fp_div_latency: u32,
    /// Branch/CR op execute latency.
    pub branch_latency: u32,
    /// Front-end depth in cycles from fetch to dispatch.
    pub frontend_depth: u32,
    /// Extra redirect penalty after a mispredicted branch resolves.
    pub mispredict_penalty: u32,
    /// In-flight fetch buffer (instructions) between fetch and dispatch.
    pub fetch_buffer: u32,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles (contention-less, Table 2).
    pub memory_latency: u32,
    /// Outstanding-miss registers (per cache level) bounding memory-level
    /// parallelism.
    pub miss_registers: u32,
}

impl MachineConfig {
    /// The Table-2 base 180 nm POWER4-like configuration.
    #[must_use]
    pub fn power4_180nm() -> Self {
        MachineConfig {
            fetch_width: 8,
            dispatch_width: 5,
            retire_width: 5,
            rob_entries: 150,
            int_regs: 120,
            fp_regs: 96,
            mem_queue: 32,
            int_units: 2,
            fp_units: 2,
            ls_units: 2,
            branch_units: 1,
            cr_units: 1,
            int_alu_latency: 1,
            int_mul_latency: 7,
            int_div_latency: 35,
            fp_latency: 4,
            fp_div_latency: 12,
            branch_latency: 1,
            frontend_depth: 6,
            mispredict_penalty: 6,
            fetch_buffer: 48,
            l1i: CacheConfig {
                bytes: 32 << 10,
                line_bytes: 128,
                ways: 2,
                hit_latency: 1,
            },
            l1d: CacheConfig {
                bytes: 32 << 10,
                line_bytes: 128,
                ways: 2,
                hit_latency: 2,
            },
            l2: CacheConfig {
                bytes: 2 << 20,
                line_bytes: 128,
                ways: 8,
                hit_latency: 20,
            },
            memory_latency: 102,
            miss_registers: 8,
        }
    }

    /// Number of architectural integer registers assumed renamed onto
    /// `int_regs` (PowerPC: 32).
    pub const ARCH_INT_REGS: u32 = 32;
    /// Number of architectural FP registers (PowerPC: 32).
    pub const ARCH_FP_REGS: u32 = 32;

    /// Integer rename registers available for in-flight producers.
    #[must_use]
    pub fn int_rename_regs(&self) -> u32 {
        self.int_regs.saturating_sub(Self::ARCH_INT_REGS)
    }

    /// FP rename registers available for in-flight producers.
    #[must_use]
    pub fn fp_rename_regs(&self) -> u32 {
        self.fp_regs.saturating_sub(Self::ARCH_FP_REGS)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let positive = [
            ("fetch_width", self.fetch_width),
            ("dispatch_width", self.dispatch_width),
            ("retire_width", self.retire_width),
            ("rob_entries", self.rob_entries),
            ("mem_queue", self.mem_queue),
            ("int_units", self.int_units),
            ("fp_units", self.fp_units),
            ("ls_units", self.ls_units),
            ("branch_units", self.branch_units),
            ("cr_units", self.cr_units),
            ("miss_registers", self.miss_registers),
            ("fetch_buffer", self.fetch_buffer),
        ];
        for (name, v) in positive {
            if v == 0 {
                return Err(format!("{name} must be positive"));
            }
        }
        if self.int_rename_regs() == 0 {
            return Err("int_regs must exceed the 32 architectural registers".into());
        }
        if self.fp_rename_regs() == 0 {
            return Err("fp_regs must exceed the 32 architectural registers".into());
        }
        if self.retire_width > self.rob_entries {
            return Err("retire_width exceeds rob_entries".into());
        }
        for (name, c) in [("l1i", &self.l1i), ("l1d", &self.l1d), ("l2", &self.l2)] {
            if c.bytes == 0 || c.line_bytes == 0 || c.ways == 0 {
                return Err(format!("{name} has zero-sized geometry"));
            }
            let sets = c.bytes / (u64::from(c.line_bytes) * u64::from(c.ways));
            if sets == 0 || !sets.is_power_of_two() {
                return Err(format!("{name} set count must be a positive power of two"));
            }
        }
        if self.l2.hit_latency <= self.l1d.hit_latency {
            return Err("L2 must be slower than L1D".into());
        }
        if self.memory_latency <= self.l2.hit_latency {
            return Err("memory must be slower than L2".into());
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::power4_180nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults() {
        let c = MachineConfig::power4_180nm();
        assert_eq!(c.rob_entries, 150);
        assert_eq!(c.int_regs, 120);
        assert_eq!(c.fp_regs, 96);
        assert_eq!(c.mem_queue, 32);
        assert_eq!(c.l1d.bytes, 32 << 10);
        assert_eq!(c.l2.bytes, 2 << 20);
        assert_eq!(c.l1d.hit_latency, 2);
        assert_eq!(c.l2.hit_latency, 20);
        assert_eq!(c.memory_latency, 102);
        assert_eq!(c.int_div_latency, 35);
        assert_eq!(c.fp_div_latency, 12);
        c.validate().unwrap();
    }

    #[test]
    fn cache_sets() {
        let c = MachineConfig::power4_180nm();
        assert_eq!(c.l1d.sets(), 128);
        assert_eq!(c.l2.sets(), 2048);
    }

    #[test]
    fn rename_register_counts() {
        let c = MachineConfig::power4_180nm();
        assert_eq!(c.int_rename_regs(), 88);
        assert_eq!(c.fp_rename_regs(), 64);
    }

    #[test]
    fn validation_catches_bad_geometry() {
        let mut c = MachineConfig::power4_180nm();
        c.l1d.bytes = 33 << 10; // not a power-of-two set count
        assert!(c.validate().is_err());

        let mut c = MachineConfig::power4_180nm();
        c.int_regs = 32;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::power4_180nm();
        c.memory_latency = 10;
        assert!(c.validate().is_err());
    }
}
