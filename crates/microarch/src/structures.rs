//! The seven microarchitectural structures tracked for power, temperature,
//! and reliability.
//!
//! Following the paper (§4.3), the POWER4-like core is combined into 7
//! distinct structures; HotSpot produces per-structure temperatures and
//! RAMP per-structure failure rates at this granularity.

use serde::{Deserialize, Serialize};

/// A microarchitectural structure of the modeled core.
///
/// # Examples
///
/// ```
/// use ramp_microarch::Structure;
/// assert_eq!(Structure::ALL.len(), 7);
/// assert_eq!(Structure::Fpu.index(), Structure::ALL.iter().position(|&s| s == Structure::Fpu).unwrap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Structure {
    /// Instruction fetch unit: I-cache, fetch logic, branch predictor.
    Ifu,
    /// Instruction decode unit: decode, crack, group formation.
    Idu,
    /// Instruction sequencing unit: rename, issue queues, reorder buffer.
    Isu,
    /// Fixed-point execution: two integer units + integer register file.
    Fxu,
    /// Floating-point execution: two FP units + FP register file.
    Fpu,
    /// Load-store unit: two LS pipes, D-cache, memory (load/store) queue.
    Lsu,
    /// Branch and condition-register execution unit.
    Bxu,
}

impl Structure {
    /// All structures in canonical (floorplan) order.
    pub const ALL: [Structure; 7] = [
        Structure::Ifu,
        Structure::Idu,
        Structure::Isu,
        Structure::Fxu,
        Structure::Fpu,
        Structure::Lsu,
        Structure::Bxu,
    ];

    /// Number of tracked structures.
    pub const COUNT: usize = 7;

    /// Dense index of this structure within [`Structure::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Structure::Ifu => 0,
            Structure::Idu => 1,
            Structure::Isu => 2,
            Structure::Fxu => 3,
            Structure::Fpu => 4,
            Structure::Lsu => 5,
            Structure::Bxu => 6,
        }
    }

    /// Fraction of the core's die area occupied by this structure
    /// (POWER4-like floorplan; sums to 1 across [`Structure::ALL`]).
    ///
    /// The caches and queues of the LSU make it the largest unit; the
    /// IFU's I-cache and the FPU's register file and pipes follow.
    #[must_use]
    pub fn area_fraction(self) -> f64 {
        match self {
            Structure::Ifu => 0.16,
            Structure::Idu => 0.08,
            Structure::Isu => 0.14,
            Structure::Fxu => 0.12,
            Structure::Fpu => 0.15,
            Structure::Lsu => 0.25,
            Structure::Bxu => 0.10,
        }
    }

    /// Short uppercase mnemonic (POWER4 unit naming).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Structure::Ifu => "IFU",
            Structure::Idu => "IDU",
            Structure::Isu => "ISU",
            Structure::Fxu => "FXU",
            Structure::Fpu => "FPU",
            Structure::Lsu => "LSU",
            Structure::Bxu => "BXU",
        }
    }
}

impl std::fmt::Display for Structure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A dense per-structure map, indexed by [`Structure`].
///
/// # Examples
///
/// ```
/// use ramp_microarch::{PerStructure, Structure};
/// let mut m: PerStructure<f64> = PerStructure::default();
/// m[Structure::Lsu] = 0.5;
/// assert_eq!(m[Structure::Lsu], 0.5);
/// assert_eq!(m.iter().count(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerStructure<T>(pub [T; Structure::COUNT]);

impl<T: Default + Copy> Default for PerStructure<T> {
    fn default() -> Self {
        PerStructure([T::default(); Structure::COUNT])
    }
}

impl<T> PerStructure<T> {
    /// Builds a map by evaluating `f` for each structure.
    pub fn from_fn(mut f: impl FnMut(Structure) -> T) -> Self {
        PerStructure(Structure::ALL.map(&mut f))
    }

    /// Iterates `(structure, &value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Structure, &T)> {
        Structure::ALL.iter().map(move |&s| (s, &self.0[s.index()]))
    }

    /// Returns the underlying array in canonical order.
    #[must_use]
    pub fn as_array(&self) -> &[T; Structure::COUNT] {
        &self.0
    }
}

impl<T> std::ops::Index<Structure> for PerStructure<T> {
    type Output = T;
    fn index(&self, s: Structure) -> &T {
        &self.0[s.index()]
    }
}

impl<T> std::ops::IndexMut<Structure> for PerStructure<T> {
    fn index_mut(&mut self, s: Structure) -> &mut T {
        &mut self.0[s.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, &s) in Structure::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn area_fractions_sum_to_one() {
        let sum: f64 = Structure::ALL.iter().map(|s| s.area_fraction()).sum();
        assert!((sum - 1.0).abs() < 1e-12, "fractions sum to {sum}");
    }

    #[test]
    fn lsu_is_largest() {
        let lsu = Structure::Lsu.area_fraction();
        for s in Structure::ALL {
            assert!(s.area_fraction() <= lsu);
        }
    }

    #[test]
    fn mnemonics_unique() {
        let mut names: Vec<_> = Structure::ALL.iter().map(|s| s.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Structure::COUNT);
    }

    #[test]
    fn per_structure_from_fn() {
        let m = PerStructure::from_fn(|s| s.index() * 2);
        assert_eq!(m[Structure::Bxu], 12);
        assert_eq!(m.as_array()[0], 0);
    }

    #[test]
    fn per_structure_iter_order() {
        let m = PerStructure::from_fn(|s| s.index());
        let idx: Vec<_> = m.iter().map(|(_, &v)| v).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5, 6]);
    }
}
