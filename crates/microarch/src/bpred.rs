//! Branch direction prediction: a gshare predictor with 2-bit counters.

/// A gshare branch predictor.
///
/// Global-history XOR PC indexing into a table of 2-bit saturating
/// counters. Biased branches are learned within a few executions; branches
/// with independent random outcomes converge to ≈50 % accuracy, which is
/// exactly the knob the trace profiles use to set mispredict rates.
///
/// # Examples
///
/// ```
/// use ramp_microarch::GsharePredictor;
/// // Bimodal mode (no history): an always-taken branch is learned quickly.
/// let mut p = GsharePredictor::bimodal(12);
/// for _ in 0..8 {
///     p.update(0x4000, true);
/// }
/// assert!(p.predict(0x4000));
/// ```
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    table: Vec<u8>,
    history: u64,
    history_mask: u64,
    mask: u64,
    predictions: u64,
    mispredictions: u64,
}

impl GsharePredictor {
    /// Creates a predictor with `2^bits` counters and `bits` of global
    /// history.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 24`.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        Self::with_history(bits, bits)
    }

    /// Creates a predictor with `2^bits` counters and `history_bits` of
    /// global history folded into the index. `history_bits = 0` yields a
    /// pure bimodal (per-PC) predictor — the right choice when global
    /// history carries no signal, as with statistically generated traces.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 24` and `history_bits <= bits`.
    #[must_use]
    pub fn with_history(bits: u32, history_bits: u32) -> Self {
        assert!((1..=24).contains(&bits), "predictor bits out of range");
        assert!(history_bits <= bits, "history wider than the table index");
        GsharePredictor {
            table: vec![1; 1 << bits], // weakly not-taken
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
            mask: (1u64 << bits) - 1,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Creates a bimodal (PC-indexed, history-free) predictor.
    #[must_use]
    pub fn bimodal(bits: u32) -> Self {
        Self::with_history(bits, 0)
    }

    fn index(&self, pc: u64) -> usize {
        // Multiplicative hash decorrelates regularly spaced branch PCs;
        // real predictors achieve the same with set-index bit selection.
        let hashed = (pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
        ((hashed ^ (self.history & self.history_mask)) & self.mask) as usize
    }

    /// Predicts the direction of the branch at `pc`.
    #[must_use]
    pub fn predict(&self, pc: u64) -> bool {
        // ramp-lint:allow(panic-reach) -- `index()` masks into the table length
        self.table[self.index(pc)] >= 2
    }

    /// Updates predictor state with the actual outcome and records whether
    /// the preceding prediction was correct. Returns `true` if the
    /// prediction was correct.
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        // ramp-lint:allow(panic-reach) -- `index()` masks into the table length
        let predicted = self.table[idx] >= 2;
        let counter = &mut self.table[idx]; // ramp-lint:allow(panic-reach) -- `index()` masks into the table length
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & self.mask;
        self.predictions += 1;
        if predicted != taken {
            self.mispredictions += 1;
        }
        predicted == taken
    }

    /// History bits folded into the index (0 for a bimodal predictor).
    #[must_use]
    pub fn history_bits(&self) -> u32 {
        self.history_mask.count_ones()
    }

    /// Fraction of updates where the prediction was wrong.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Total branches predicted.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branch() {
        let mut p = GsharePredictor::new(10);
        for _ in 0..64 {
            p.update(0x1000, true);
        }
        // After warm-up the branch should be predicted near-perfectly.
        let before = p.mispredict_rate();
        for _ in 0..64 {
            p.update(0x1000, true);
        }
        assert!(p.mispredict_rate() <= before);
        assert!(p.predict(0x1000));
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = GsharePredictor::new(12);
        let mut correct = 0;
        for i in 0..2000u64 {
            let taken = i % 2 == 0;
            if p.update(0x2000, taken) && i > 200 {
                correct += 1;
            }
        }
        // History-based indexing should crack a strict alternation.
        assert!(correct > 1500, "correct after warm-up: {correct}");
    }

    #[test]
    fn random_branch_near_half_accuracy() {
        let mut p = GsharePredictor::new(12);
        let mut rng = ramp_trace::Rng::seed_from(99);
        for _ in 0..20_000 {
            p.update(0x3000, rng.chance(0.5));
        }
        let rate = p.mispredict_rate();
        assert!((0.4..0.6).contains(&rate), "mispredict rate {rate}");
    }

    #[test]
    #[should_panic(expected = "bits out of range")]
    fn rejects_oversized_table() {
        let _ = GsharePredictor::new(30);
    }
}
