//! The trace-driven out-of-order timing model.
//!
//! # Modelling approach
//!
//! Like Turandot, the engine consumes a dynamic instruction trace and
//! computes when each instruction would fetch, dispatch, issue, complete,
//! and retire on the Table-2 machine. Rather than simulating every cycle,
//! it advances per-instruction *timestamps* under the machine's resource
//! constraints (a standard interval/timestamp formulation that is
//! equivalent for latency/occupancy modelling and considerably faster):
//!
//! * **Fetch** — `fetch_width` per cycle, broken by taken branches,
//!   stalled by L1I misses and by branch-mispredict redirects; backpressure
//!   from a finite fetch buffer.
//! * **Dispatch** — one `dispatch_width` group per cycle; blocked until a
//!   ROB slot, a rename register of the right class, and (for memory ops) a
//!   memory-queue slot are free, all released at the retirement of the
//!   holder.
//! * **Issue** — when sources are ready and a functional unit of the right
//!   class is free; divides occupy their unit non-pipelined.
//! * **Loads** — probe the L1D/L2/memory hierarchy; off-chip misses also
//!   occupy one of a finite set of miss registers, bounding memory-level
//!   parallelism.
//! * **Retire** — in order, one `retire_width` group per cycle.
//!
//! Each micro-event (fetch, dispatch, issue, per-unit execute) is recorded
//! in an [`ActivityCollector`](crate::ActivityCollector) bucket, producing
//! the per-interval activity factors the power model consumes. Wrong-path
//! work after a mispredict is charged to the front-end structures (IFU,
//! IDU) at the machine's fetch rate for the duration of the redirect
//! shadow, which is what makes low-IPC, mispredict-heavy codes (e.g. gcc)
//! hot in the fetch engine even though little of their work retires.

use crate::activity::{default_capacities, ActivityCollector, ActivityTrace};
use crate::cache::{Cache, DataHierarchy, HitLevel};
use crate::bpred::GsharePredictor;
use crate::{MachineConfig, SimStats, Structure};
use ramp_trace::{OpClass, TraceRecord};

/// How long to run a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimulationLength {
    /// Run until this many instructions retire (or the trace ends).
    Instructions(u64),
    /// Run until the simulated cycle count reaches this bound.
    Cycles(u64),
}

/// Result of a timing simulation: summary statistics plus the per-interval
/// activity trace.
#[derive(Debug, Clone)]
pub struct SimulationOutput {
    /// Aggregate statistics.
    pub stats: SimStats,
    /// Per-interval activity factors.
    pub activity: ActivityTrace,
}

/// Ring buffer of timestamps used for window resources (ROB, rename
/// registers, memory queue): entry `i mod cap` holds the retire time of the
/// `i`-th allocation, so allocation `i` must wait for `ring[i - cap]`.
#[derive(Debug, Clone)]
struct WindowResource {
    retire_times: Vec<u64>,
    allocated: u64,
}

impl WindowResource {
    fn new(capacity: u32) -> Self {
        WindowResource {
            retire_times: vec![0; capacity as usize],
            allocated: 0,
        }
    }

    /// Earliest cycle at which the next allocation may proceed.
    fn available_at(&self) -> u64 {
        let cap = self.retire_times.len() as u64;
        if self.allocated < cap {
            0
        } else {
            self.retire_times[(self.allocated % cap) as usize] // ramp-lint:allow(panic-reach) -- register indices are below the architected register count
        }
    }

    /// Allocates a slot; `retire` is when the slot frees again.
    fn allocate(&mut self, retire: u64) {
        let cap = self.retire_times.len() as u64;
        let idx = (self.allocated % cap) as usize;
        self.retire_times[idx] = retire; // ramp-lint:allow(panic-reach) -- register and ring indices are bounded by the machine configuration
        self.allocated += 1;
    }
}

/// A pool of `k` identical units modelled as per-cycle issue capacity.
///
/// True out-of-order issue means a unit is occupied only while an operation
/// actually executes on it, never while an instruction *waits* for
/// operands. The pool therefore tracks, per future cycle, how many of the
/// `k` units are in use, in a sliding ring window; claiming searches for
/// the earliest cycle ≥ `ready` with a free unit for `occupancy`
/// consecutive cycles (non-pipelined ops like divides occupy > 1).
#[derive(Debug, Clone)]
struct UnitPool {
    units: u8,
    counts: Vec<u8>,
    /// Cycles below `floor` are in the past; `counts[(c - floor) % len]`
    /// holds cycle `c`'s usage for `c ∈ [floor, floor + len)`.
    floor: u64,
}

/// Ring window size; larger than any realisable issue-time spread within
/// the ROB window (max chain ≈ memory latency + divide latency + queueing).
const POOL_WINDOW: usize = 8192;

impl UnitPool {
    fn new(count: u32) -> Self {
        UnitPool {
            units: count.min(255) as u8,
            counts: vec![0; POOL_WINDOW],
            floor: 0,
        }
    }

    fn slot(&self, cycle: u64) -> usize {
        (cycle % POOL_WINDOW as u64) as usize
    }

    /// Advances the window floor to `new_floor`, clearing expired entries.
    /// Safe whenever no future claim can target a cycle below `new_floor`.
    fn advance_floor(&mut self, new_floor: u64) {
        if new_floor <= self.floor {
            return;
        }
        let delta = (new_floor - self.floor).min(POOL_WINDOW as u64);
        for i in 0..delta {
            let idx = self.slot(self.floor + i);
            self.counts[idx] = 0; // ramp-lint:allow(panic-reach) -- register and ring indices are bounded by the machine configuration
        }
        self.floor = new_floor;
    }

    /// Claims a unit for `occupancy` consecutive cycles starting at the
    /// earliest cycle ≥ `ready` where one is free; returns that cycle.
    fn claim(&mut self, ready: u64, occupancy: u64) -> u64 {
        let mut t = ready.max(self.floor);
        loop {
            // Beyond the window we stop tracking and grant optimistically;
            // unreachable in practice (window ≫ ROB-bounded spread).
            if t + occupancy >= self.floor + POOL_WINDOW as u64 {
                return t;
            }
            let conflict = (t..t + occupancy)
                .find(|&c| self.counts[self.slot(c)] >= self.units); // ramp-lint:allow(panic-reach) -- register and ring indices are bounded by the machine configuration
            match conflict {
                Some(c) => t = c + 1,
                None => {
                    for c in t..t + occupancy {
                        let idx = self.slot(c);
                        self.counts[idx] += 1; // ramp-lint:allow(panic-reach) -- register and ring indices are bounded by the machine configuration
                    }
                    return t;
                }
            }
        }
    }
}

/// In-order retirement: at most `width` per cycle, monotone non-decreasing.
#[derive(Debug, Clone)]
struct RetireStage {
    width: u32,
    cycle: u64,
    used_this_cycle: u32,
}

impl RetireStage {
    fn new(width: u32) -> Self {
        RetireStage {
            width,
            cycle: 0,
            used_this_cycle: 0,
        }
    }

    /// Retires an instruction whose execution completes at `complete`;
    /// returns its retirement cycle.
    fn retire(&mut self, complete: u64) -> u64 {
        let earliest = complete + 1;
        if earliest > self.cycle {
            self.cycle = earliest;
            self.used_this_cycle = 0;
        } else if self.used_this_cycle >= self.width {
            self.cycle += 1;
            self.used_this_cycle = 0;
        }
        self.used_this_cycle += 1;
        self.cycle
    }
}

/// The simulation engine. Prefer the [`simulate`] convenience function; use
/// the engine directly to feed instructions incrementally.
#[derive(Debug)]
pub struct Engine {
    config: MachineConfig,
    icache: Cache,
    dcache: DataHierarchy,
    bpred: GsharePredictor,
    collector: ActivityCollector,

    reg_ready: [u64; ramp_trace::TOTAL_REGS as usize],
    rob: WindowResource,
    int_rename: WindowResource,
    fp_rename: WindowResource,
    mem_queue: WindowResource,

    int_units: UnitPool,
    fp_units: UnitPool,
    ls_units: UnitPool,
    br_units: UnitPool,
    cr_units: UnitPool,
    miss_regs: UnitPool,

    retire: RetireStage,
    fetch_cycle: u64,
    fetched_this_cycle: u32,
    last_fetch_line: u64,
    last_fetch_pc: Option<u64>,
    /// Dispatch times of the last `fetch_buffer` instructions (ring).
    dispatch_ring: Vec<u64>,
    dispatch_count: u64,
    dispatch_cycle: u64,
    dispatched_this_cycle: u32,

    stats: SimStats,
    last_retire_cycle: u64,
}

impl Engine {
    /// Creates an engine for `config`, bucketing activity every
    /// `interval_cycles`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MachineConfig::validate`] or
    /// `interval_cycles` is zero.
    #[must_use]
    pub fn new(config: &MachineConfig, interval_cycles: u64) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid machine configuration: {e}"); // ramp-lint:allow(panic-hygiene) -- documented constructor contract for invalid configs
        }
        Engine {
            icache: Cache::new(&config.l1i),
            dcache: DataHierarchy::new(config),
            // Bimodal: synthetic traces visit branch sites in statistically
            // independent order, so global history is pure index noise.
            bpred: GsharePredictor::bimodal(14),
            collector: ActivityCollector::new(interval_cycles, default_capacities(config)),
            reg_ready: [0; ramp_trace::TOTAL_REGS as usize],
            rob: WindowResource::new(config.rob_entries),
            int_rename: WindowResource::new(config.int_rename_regs()),
            fp_rename: WindowResource::new(config.fp_rename_regs()),
            mem_queue: WindowResource::new(config.mem_queue),
            int_units: UnitPool::new(config.int_units),
            fp_units: UnitPool::new(config.fp_units),
            ls_units: UnitPool::new(config.ls_units),
            br_units: UnitPool::new(config.branch_units),
            cr_units: UnitPool::new(config.cr_units),
            miss_regs: UnitPool::new(config.miss_registers),
            retire: RetireStage::new(config.retire_width),
            fetch_cycle: 0,
            fetched_this_cycle: 0,
            last_fetch_line: u64::MAX,
            last_fetch_pc: None,
            dispatch_ring: vec![0; config.fetch_buffer as usize],
            dispatch_count: 0,
            dispatch_cycle: 0,
            dispatched_this_cycle: 0,
            stats: SimStats::default(),
            last_retire_cycle: 0,
            config: config.clone(),
        }
    }

    /// Current simulated cycle (the cycle of the latest retirement).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.last_retire_cycle
    }

    /// Executes one trace record through the model.
    pub fn step(&mut self, rec: &TraceRecord) {
        // ---------------- Fetch ------------------------------------------
        // Backpressure: fetch may run at most `fetch_buffer` instructions
        // ahead of dispatch.
        let buffer_cap = self.dispatch_ring.len() as u64;
        if self.dispatch_count >= buffer_cap {
            let idx = (self.dispatch_count % buffer_cap) as usize;
            // ramp-lint:allow(panic-reach) -- `idx` is taken modulo the ring length
            let limit = self.dispatch_ring[idx];
            if limit > self.fetch_cycle {
                self.fetch_cycle = limit;
                self.fetched_this_cycle = 0;
            }
        }
        // I-cache probe on line crossings. A sequential crossing is covered
        // by the next-line prefetcher (a miss costs one bubble); a redirect
        // (taken branch or mispredict repair) pays the full L2 fill.
        let line = rec.pc() >> self.config.l1i.line_bytes.trailing_zeros();
        if line != self.last_fetch_line {
            let sequential = self
                .last_fetch_pc
                .map(|p| rec.pc() == p + 4)
                .unwrap_or(false);
            self.last_fetch_line = line;
            if !self.icache.access(rec.pc()) {
                self.stats.l1i_misses += 1;
                let penalty = if sequential {
                    1
                } else {
                    u64::from(self.config.l2.hit_latency)
                };
                self.fetch_cycle += penalty;
                self.stats.icache_stall_cycles += penalty;
                self.fetched_this_cycle = 0;
            }
        }
        self.last_fetch_pc = Some(rec.pc());
        if self.fetched_this_cycle >= self.config.fetch_width {
            self.fetch_cycle += 1;
            self.fetched_this_cycle = 0;
        }
        let fetch_time = self.fetch_cycle;
        self.fetched_this_cycle += 1;
        self.collector.record(Structure::Ifu, fetch_time, 1);

        // ---------------- Dispatch ---------------------------------------
        let frontend_ready = fetch_time + u64::from(self.config.frontend_depth);
        let mut earliest_dispatch = frontend_ready;
        let rob_ready = self.rob.available_at();
        if rob_ready > earliest_dispatch {
            earliest_dispatch = rob_ready;
            self.stats.rob_stalls += 1;
        }
        let writes_int = rec
            .dest()
            .map(|d| d < ramp_trace::FP_REG_BASE)
            .unwrap_or(false);
        let writes_fp = rec
            .dest()
            .map(|d| {
                (ramp_trace::FP_REG_BASE..ramp_trace::CR_REG_BASE).contains(&d)
            })
            .unwrap_or(false);
        if writes_int || writes_fp {
            let rename_ready = if writes_int {
                self.int_rename.available_at()
            } else {
                self.fp_rename.available_at()
            };
            if rename_ready > earliest_dispatch {
                earliest_dispatch = rename_ready;
                self.stats.rename_stalls += 1;
            }
        }
        if rec.op().is_memory() {
            let memq_ready = self.mem_queue.available_at();
            if memq_ready > earliest_dispatch {
                earliest_dispatch = memq_ready;
                self.stats.memq_stalls += 1;
            }
        }
        if earliest_dispatch > self.dispatch_cycle {
            self.dispatch_cycle = earliest_dispatch;
            self.dispatched_this_cycle = 0;
        } else if self.dispatched_this_cycle >= self.config.dispatch_width {
            self.dispatch_cycle += 1;
            self.dispatched_this_cycle = 0;
        }
        let dispatch_time = self.dispatch_cycle;
        self.dispatched_this_cycle += 1;
        self.collector.record(Structure::Idu, dispatch_time, 1);

        // ---------------- Issue / execute --------------------------------
        // Dispatch is monotone and every later issue happens after its own
        // dispatch, so cycles before `dispatch_time` can be expired from
        // the unit-pool windows.
        self.int_units.advance_floor(dispatch_time);
        self.fp_units.advance_floor(dispatch_time);
        self.ls_units.advance_floor(dispatch_time);
        self.br_units.advance_floor(dispatch_time);
        self.cr_units.advance_floor(dispatch_time);
        self.miss_regs.advance_floor(dispatch_time);

        let mut ready = dispatch_time + 1;
        for src in rec.sources().into_iter().flatten() {
            ready = ready.max(self.reg_ready[src as usize]); // ramp-lint:allow(panic-reach) -- register indices are below the architected register count
        }

        let (issue, complete, exec_structure) = match rec.op() {
            OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv => {
                let latency = match rec.op() {
                    OpClass::IntAlu => self.config.int_alu_latency,
                    OpClass::IntMul => self.config.int_mul_latency,
                    _ => self.config.int_div_latency,
                };
                // Divides are not pipelined.
                let occupancy = if rec.op() == OpClass::IntDiv {
                    u64::from(latency)
                } else {
                    1
                };
                let issue = self.int_units.claim(ready, occupancy);
                (issue, issue + u64::from(latency), Structure::Fxu)
            }
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => {
                let latency = if rec.op() == OpClass::FpDiv {
                    self.config.fp_div_latency
                } else {
                    self.config.fp_latency
                };
                let occupancy = if rec.op() == OpClass::FpDiv {
                    u64::from(latency)
                } else {
                    1
                };
                let issue = self.fp_units.claim(ready, occupancy);
                (issue, issue + u64::from(latency), Structure::Fpu)
            }
            OpClass::Load => {
                let issue = self.ls_units.claim(ready, 1);
                let addr = rec.mem().expect("load carries an address").addr; // ramp-lint:allow(panic-hygiene) -- decoder guarantees loads carry addresses
                let level = self.dcache.access(addr);
                let mut latency = u64::from(self.dcache.latency(level));
                match level {
                    HitLevel::L1 => {}
                    HitLevel::L2 => self.stats.l1d_misses += 1,
                    HitLevel::Memory => {
                        self.stats.l1d_misses += 1;
                        self.stats.l2_misses += 1;
                        // A finite number of outstanding off-chip misses
                        // bounds memory-level parallelism.
                        let occupancy =
                            u64::from(self.config.memory_latency - self.config.l2.hit_latency);
                        let start = self.miss_regs.claim(issue, occupancy);
                        latency += start - issue;
                    }
                }
                self.stats.loads += 1;
                (issue, issue + latency, Structure::Lsu)
            }
            OpClass::Store => {
                let issue = self.ls_units.claim(ready, 1);
                let addr = rec.mem().expect("store carries an address").addr; // ramp-lint:allow(panic-hygiene) -- decoder guarantees stores carry addresses
                let level = self.dcache.access(addr);
                match level {
                    HitLevel::L1 => {}
                    HitLevel::L2 => self.stats.l1d_misses += 1,
                    HitLevel::Memory => {
                        self.stats.l1d_misses += 1;
                        self.stats.l2_misses += 1;
                    }
                }
                self.stats.stores += 1;
                // Stores complete into the store queue; the write drains in
                // the background and does not stall retirement.
                (issue, issue + 1, Structure::Lsu)
            }
            OpClass::Branch => {
                let issue = self.br_units.claim(ready, 1);
                let complete = issue + u64::from(self.config.branch_latency);
                let info = rec.branch().expect("branch carries an outcome"); // ramp-lint:allow(panic-hygiene) -- decoder guarantees branches carry outcomes
                let correct = self.bpred.update(rec.pc(), info.taken);
                self.stats.branches += 1;
                if !correct {
                    self.stats.mispredicts += 1;
                    let redirect =
                        complete + u64::from(self.config.mispredict_penalty);
                    // Wrong-path shadow: the front end kept running from the
                    // fetch of this branch until the redirect.
                    let shadow = redirect.saturating_sub(fetch_time);
                    let wrong =
                        (shadow * u64::from(self.config.fetch_width)).min(256);
                    self.stats.wrong_path_fetches += wrong;
                    self.collector.record(Structure::Ifu, fetch_time, wrong);
                    self.collector
                        .record(Structure::Idu, dispatch_time, wrong / 2);
                    if redirect > self.fetch_cycle {
                        self.stats.redirect_stall_cycles += redirect - self.fetch_cycle;
                        self.fetch_cycle = redirect;
                        self.fetched_this_cycle = 0;
                        self.last_fetch_line = u64::MAX;
                    }
                } else if info.taken {
                    // Correctly predicted taken branch still ends the
                    // current fetch group.
                    self.fetch_cycle += 1;
                    self.fetched_this_cycle = 0;
                    self.last_fetch_line = u64::MAX;
                }
                (issue, complete, Structure::Bxu)
            }
            OpClass::CondReg => {
                let issue = self.cr_units.claim(ready, 1);
                (issue, issue + u64::from(self.config.branch_latency), Structure::Bxu)
            }
        };

        self.collector.record(exec_structure, issue, 1);
        self.collector.record(Structure::Isu, issue, 1);

        if let Some(dst) = rec.dest() {
            self.reg_ready[dst as usize] = complete; // ramp-lint:allow(panic-reach) -- register indices are below the architected register count
        }

        // ---------------- Retire -----------------------------------------
        let retire_time = self.retire.retire(complete);
        self.rob.allocate(retire_time);
        if writes_int {
            self.int_rename.allocate(retire_time);
        }
        if writes_fp {
            self.fp_rename.allocate(retire_time);
        }
        if rec.op().is_memory() {
            self.mem_queue.allocate(retire_time);
        }
        let buffer_cap = self.dispatch_ring.len() as u64;
        let idx = (self.dispatch_count % buffer_cap) as usize;
        self.dispatch_ring[idx] = dispatch_time; // ramp-lint:allow(panic-reach) -- register indices are below the architected register count
        self.dispatch_count += 1;

        self.collector.record_retire(retire_time, 1);
        self.stats.instructions += 1;
        self.last_retire_cycle = retire_time;
    }

    /// Finalises the run, returning statistics and the activity trace.
    #[must_use]
    pub fn finish(mut self) -> SimulationOutput {
        self.stats.cycles = self.last_retire_cycle;
        let activity = self.collector.finish(self.last_retire_cycle);
        SimulationOutput {
            stats: self.stats,
            activity,
        }
    }
}

/// Runs a trace through the Table-2 machine until `length` is reached (or
/// the trace ends), collecting activity at `interval_cycles` granularity.
///
/// # Examples
///
/// ```
/// use ramp_microarch::{simulate, MachineConfig, SimulationLength};
/// use ramp_trace::{spec, TraceGenerator};
/// let cfg = MachineConfig::power4_180nm();
/// let p = spec::profile("ammp").unwrap();
/// let out = simulate(&cfg, TraceGenerator::new(&p),
///                    SimulationLength::Instructions(10_000), 1_100);
/// assert_eq!(out.stats.instructions, 10_000);
/// ```
pub fn simulate<I>(
    config: &MachineConfig,
    trace: I,
    length: SimulationLength,
    interval_cycles: u64,
) -> SimulationOutput
where
    I: IntoIterator<Item = TraceRecord>,
{
    let mut engine = Engine::new(config, interval_cycles);
    for rec in trace {
        engine.step(&rec);
        match length {
            SimulationLength::Instructions(n) if engine.stats.instructions >= n => break,
            SimulationLength::Cycles(c) if engine.cycle() >= c => break,
            _ => {}
        }
    }
    engine.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramp_trace::{spec, TraceGenerator};

    fn run(name: &str, n: u64) -> SimulationOutput {
        let cfg = MachineConfig::power4_180nm();
        let p = spec::profile(name).unwrap();
        simulate(
            &cfg,
            TraceGenerator::new(&p),
            SimulationLength::Instructions(n),
            1_100,
        )
    }

    #[test]
    fn ipc_is_plausible_and_bounded() {
        for name in ["gzip", "ammp", "crafty"] {
            let out = run(name, 50_000);
            let ipc = out.stats.ipc();
            assert!(ipc > 0.2, "{name}: ipc {ipc} too low");
            assert!(ipc <= 5.0, "{name}: ipc {ipc} exceeds retire width");
        }
    }

    #[test]
    fn deterministic() {
        let a = run("twolf", 20_000);
        let b = run("twolf", 20_000);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.activity, b.activity);
    }

    #[test]
    fn high_ilp_app_beats_low_ilp_app() {
        let fast = run("crafty", 100_000).stats.ipc();
        let slow = run("ammp", 100_000).stats.ipc();
        assert!(
            fast > slow + 0.3,
            "crafty {fast} should be well above ammp {slow}"
        );
    }

    #[test]
    fn cache_hungry_app_misses_more() {
        let hungry = run("ammp", 100_000).stats;
        let friendly = run("crafty", 100_000).stats;
        assert!(hungry.l2_mpki() > friendly.l2_mpki());
    }

    #[test]
    fn mispredict_rate_tracks_profile() {
        // mgrid executes few branches (2 % of its mix), so the predictor
        // needs a long stream to exit warm-up; 1 M instructions suffices.
        let noisy = run("gcc", 1_000_000).stats; // random_fraction 0.14
        let clean = run("mgrid", 1_000_000).stats; // random_fraction 0.01
        assert!(noisy.mispredict_rate() > clean.mispredict_rate());
        assert!(noisy.mispredict_rate() > 0.03);
        assert!(clean.mispredict_rate() < 0.06);
    }

    #[test]
    fn activity_factors_populated_and_bounded() {
        let out = run("wupwise", 50_000);
        let avg = out.activity.average();
        for (s, p) in avg.iter() {
            assert!(
                (0.0..=1.0).contains(&p.value()),
                "{s}: activity {p} out of range"
            );
        }
        // An FP benchmark must exercise the FPU.
        assert!(avg[Structure::Fpu].value() > 0.05);
        assert!(avg[Structure::Ifu].value() > 0.05);
    }

    #[test]
    fn fp_app_loads_fpu_more_than_int_app() {
        let fp = run("applu", 50_000).activity.average()[Structure::Fpu].value();
        let int = run("bzip2", 50_000).activity.average()[Structure::Fpu].value();
        assert!(fp > int * 3.0, "fp {fp} vs int {int}");
    }

    #[test]
    fn stall_attribution_is_populated_and_consistent() {
        // gcc: big code footprint and noisy branches → both front-end
        // stall classes must be visible; the fraction stays below 1.
        let out = run("gcc", 200_000);
        assert!(out.stats.icache_stall_cycles > 0);
        assert!(out.stats.redirect_stall_cycles > 0);
        let f = out.stats.frontend_stall_fraction();
        assert!((0.0..1.0).contains(&f), "stall fraction {f}");
        // A serial memory-hungry app exercises the back-end windows.
        let ammp = run("ammp", 200_000);
        assert!(
            ammp.stats.rob_stalls + ammp.stats.rename_stalls + ammp.stats.memq_stalls > 0,
            "window stalls should appear for a long-latency workload"
        );
    }

    #[test]
    fn cycle_length_bound_respected() {
        let cfg = MachineConfig::power4_180nm();
        let p = spec::profile("gap").unwrap();
        let out = simulate(
            &cfg,
            TraceGenerator::new(&p),
            SimulationLength::Cycles(5_000),
            1_100,
        );
        assert!(out.stats.cycles >= 5_000);
        assert!(out.stats.cycles < 5_000 + 1_000, "should stop promptly");
    }

    #[test]
    fn serial_dependency_chain_bounds_ipc() {
        // A synthetic fully-serial trace cannot exceed IPC 1.
        use ramp_trace::{OpClass, TraceRecord};
        let cfg = MachineConfig::power4_180nm();
        let mut engine = Engine::new(&cfg, 1_000);
        for i in 0..10_000u64 {
            let rec = TraceRecord::new(0x1000 + i * 4, OpClass::IntAlu)
                .with_sources([Some(1), None])
                .with_dest(Some(1));
            engine.step(&rec);
        }
        let out = engine.finish();
        let ipc = out.stats.ipc();
        assert!(ipc <= 1.05, "serial chain ipc {ipc}");
    }

    #[test]
    fn wide_independent_stream_approaches_machine_limits() {
        // Independent single-source ALU ops: bounded by 2 int units → IPC≈2,
        // but dispatch width 5 and FXU count 2 mean IPC must sit near 2.
        use ramp_trace::{OpClass, TraceRecord};
        let cfg = MachineConfig::power4_180nm();
        let mut engine = Engine::new(&cfg, 1_000);
        for i in 0..20_000u64 {
            let dst = (i % 24) as u8;
            let rec = TraceRecord::new(0x1000 + (i % 512) * 4, OpClass::IntAlu)
                .with_sources([None, None])
                .with_dest(Some(dst));
            engine.step(&rec);
        }
        let ipc = engine.finish().stats.ipc();
        assert!(
            (1.6..=2.2).contains(&ipc),
            "independent ALU stream should saturate the 2 integer units, ipc {ipc}"
        );
    }
}
