//! Workspace root: re-exports the RAMP stack for examples and integration tests.

pub use ramp_core as core;
pub use ramp_microarch as microarch;
pub use ramp_power as power;
pub use ramp_thermal as thermal;
pub use ramp_trace as trace;
pub use ramp_units as units;
