#!/usr/bin/env bash
# Tier-1 verification: build + full test suite with a locked dependency
# graph, then the parallel-determinism contract at two thread counts.
#
# Usage: scripts/verify.sh
# Exits non-zero on the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build (locked) =="
cargo build --release --workspace --locked

echo "== tier 1: tests (locked) =="
cargo test --release --workspace --locked -q

echo "== static analysis: ramp-lint (workspace invariants) =="
# Token rules (unit safety, determinism, obs/panic/span hygiene) plus
# the structural v2 rules (panic-reach, float-determinism,
# atomic-ordering, alloc-hygiene). Fails on any finding not covered by
# lint-baseline.toml or an inline allow, and — via --fail-stale — on
# baseline entries that no longer match a finding (prune with
# `ramp-lint --prune-baseline`). The JSON report and the SARIF file for
# code scanning both land in target/ for inspection and CI upload.
mkdir -p target
lint_status=0
cargo run --release --locked -p ramp-analyze --bin ramp-lint -- \
    --root . --fail-stale --format json \
    > target/ramp-lint-report.json || lint_status=$?
if [ "${lint_status}" -ne 0 ]; then
    # Re-run in human format so the failure is readable in the log.
    cargo run --release --locked -p ramp-analyze --bin ramp-lint -- \
        --root . --fail-stale || true
    exit "${lint_status}"
fi
cargo run --release --locked -p ramp-analyze --bin ramp-lint -- \
    --root . --fail-stale --format sarif > target/ramp-lint.sarif
echo "ramp-lint: clean (report at target/ramp-lint-report.json, SARIF at target/ramp-lint.sarif)"

echo "== static analysis: clippy (workspace lint table, warnings are errors) =="
cargo clippy --release --workspace --all-targets --locked -- -D warnings

echo "== determinism: study JSON byte-identical across thread counts =="
# The test itself sweeps StudyConfig.threads in {1, 2, 8}; running the
# binary under two RAMP_THREADS values additionally covers the env-var
# path that the default configuration takes.
for threads in 1 4; do
    echo "-- RAMP_THREADS=${threads}"
    RAMP_THREADS="${threads}" cargo test --release --locked -q \
        --test parallel_determinism
done

echo "== observability: instrumented study, JSONL events, manifest =="
# Runs a short study with tracing + metrics fully on, then validates that
# the JSONL event stream parses, covers every pipeline stage, and that the
# manifest's stage tree accounts for the wall-clock (within 10%).
RAMP_LOG=debug RAMP_EVENTS=target/obs-smoke-events.jsonl \
    cargo run --release --locked -p ramp-bench --bin profile -- --check

echo "== trace smoke: causal trace export + critical-path attribution =="
# Runs a traced quick study, then validates the Chrome Trace Event export
# (complete events, monotone timestamps, cache-outcome args) and that the
# critical path attributes >=90% of study wall-clock to named spans. The
# Perfetto-loadable trace lands in target/ for inspection and CI upload.
cargo run --release --locked -p ramp-bench --bin trace -- \
    --check --out target/trace-smoke.json

echo "== alloc smoke: tracking allocator on end to end =="
# Re-runs the traced study with RAMP_ALLOC=1 (whole-process tracking via
# the env path, not just the programmatic toggle): every trace check must
# still pass — memory counter track present, >=90% of allocated bytes
# attributed to spans — and the allocation-annotated run manifest lands
# in target/ for inspection and CI artifact upload.
RAMP_ALLOC=1 cargo run --release --locked -p ramp-bench --bin trace -- \
    --check --out target/trace-alloc-smoke.json

echo "== benchmark gate: smoke run against the checked-in baseline =="
# Measures the reference workload once (K=1, loose tolerances) and gates
# it against the latest BENCH_<seq>.json: exact numerical-digest match,
# exact per-stage allocation-count digest from the single-threaded alloc
# pass, peak-live-bytes budget, advisory wall-clock budgets. A failure
# here means the simulation's numbers drifted, a pipeline stage
# disappeared, or the allocation profile changed.
cargo run --release --locked -p ramp-bench --bin benchgate -- \
    --smoke --emit target/bench-candidate.json

echo "== fleet smoke: population determinism + quantile artifact =="
# A 50k-chip population Monte Carlo per node, then byte-determinism
# re-proved in-process across thread counts and chunkings
# (--assert-deterministic). The canonical population JSON lands in
# target/ for inspection and CI artifact upload.
cargo run --release --locked -p ramp-bench --bin fleet -- \
    --chips 50000 --assert-deterministic \
    --out target/fleet-population.json

echo "== serve smoke: coalescing, cache, and admission contract =="
# Mixed query batch from concurrent in-process clients: exactly one
# pipeline execution per unique (benchmark, node) combo, everything else
# coalesced or cache-served, nothing shed, replays byte-identical. The
# metrics body lands in target/ for inspection and CI artifact upload.
cargo run --release --locked -p ramp-bench --bin serve_load -- \
    --assert --queries 48 --unique 4 --clients 8 \
    --out target/serve-metrics.json

echo "verify: OK"
