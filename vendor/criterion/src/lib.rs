//! Offline subset of `criterion`: the macro/builder surface this
//! workspace's benches use, timing each routine with `std::time::Instant`
//! and printing a plain-text mean/min/max summary. No HTML reports, no
//! statistical regression analysis — just enough to keep `cargo bench`
//! compiling and producing useful numbers offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped in [`Bencher::iter_batched`].
/// Only a hint upstream; ignored here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Collects iteration timings for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Times `routine` over `sample_size` iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: Option<&str>, name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  ({:.3} Melem/s)", n as f64 / mean.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  ({:.3} MiB/s)", n as f64 / mean.as_secs_f64() / (1 << 20) as f64)
        }
        _ => String::new(),
    };
    println!(
        "{label:<48} mean {mean:>12?}  min {min:>12?}  max {max:>12?}{rate}  [{} samples]",
        samples.len()
    );
}

/// Benchmark driver; see the `criterion_group!` / `criterion_main!`
/// macros for how instances reach bench functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Upstream defaults to 100; offline we favour fast `cargo bench`
        // runs over tight confidence intervals.
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the iteration count per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(None, name, &bencher.samples, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(
            Some(&self.name),
            &name.to_string(),
            &bencher.samples,
            self.throughput,
        );
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op offline).
    pub fn finish(self) {}
}

/// Bundles bench functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher::new(7);
        b.iter(|| 1 + 1);
        assert_eq!(b.samples.len(), 7);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut b = Bencher::new(5);
        let mut made = 0u32;
        b.iter_batched(
            || {
                made += 1;
                vec![0u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(made, 5);
        assert_eq!(b.samples.len(), 5);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.sample_size(2);
        group.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
        group.finish();
    }
}
