//! Offline JSON serialization for the vendored serde subset.
//!
//! Serializes through [`serde::Value`] with deterministic output: object
//! fields keep declaration order and floats use Rust's shortest
//! round-trip formatting, so equal inputs always produce identical bytes.

use serde::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Re-export so callers can name the error type as `serde_json::Error`.
pub type JsonError = Error;

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float, which JSON
/// cannot represent.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value to a human-readable, indented JSON string.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if !parser.at_end() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

/// Deserializes a value from JSON bytes.
///
/// # Errors
///
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or a shape
/// mismatch with `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::new(format!("non-finite float {x} cannot be JSON")));
            }
            // Rust's Display for f64 is the shortest string that parses
            // back to the same bits — deterministic and lossless.
            let _ = write!(out, "{x}");
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_separator(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                write_separator(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_separator(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !fields.is_empty() {
                write_separator(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_separator(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(format!("invalid number: {e}")))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("integer `{text}` out of range")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("integer `{text}` out of range")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic_values() {
        let v = Value::Object(vec![
            ("a".into(), Value::Float(1.5)),
            ("b".into(), Value::Array(vec![Value::UInt(1), Value::Null])),
            ("c".into(), Value::Str("x\"y\n".into())),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_formatting_is_shortest_roundtrip() {
        let x = 0.1f64 + 0.2f64;
        let text = to_string(&x).unwrap();
        assert_eq!(text.parse::<f64>().unwrap(), x);
    }

    #[test]
    fn serialization_is_deterministic() {
        let v = Value::Object(vec![
            ("z".into(), Value::Float(3.25)),
            ("a".into(), Value::UInt(7)),
        ]);
        assert_eq!(to_string(&v).unwrap(), to_string(&v).unwrap());
        // Insertion order is preserved, not sorted.
        assert_eq!(to_string(&v).unwrap(), r#"{"z":3.25,"a":7}"#);
    }

    #[test]
    fn rejects_non_finite() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::UInt(1)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
