//! Offline subset of `proptest`: strategies, the `proptest!` macro, and
//! assertion helpers over a deterministic RNG.
//!
//! Every test derives its random seed from its own module path and name,
//! so case generation is bit-for-bit reproducible across runs and
//! machines — there is no failure persistence file because there is no
//! nondeterminism to persist. Shrinking is not implemented; failures
//! report the panic from the offending case directly.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator used for all case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary string (FNV-1a hash).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and adapters
// ---------------------------------------------------------------------------

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value; `None` means the draw was rejected by a filter
    /// and the whole test case should be re-drawn.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values for which `f` returns false. `whence` labels the
    /// filter in "too many rejects" panics.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// Strategy adapter created by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.f)(v))
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        Some(self.start + rng.next_unit_f64() * (self.end - self.start))
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        Some(self.start() + rng.next_unit_f64() * (self.end() - self.start()))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                debug_assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                Some(self.start.wrapping_add(rng.next_below(span) as $t))
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let span = (*self.end() as u64)
                    .wrapping_sub(*self.start() as u64)
                    .wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return Some(rng.next_u64() as $t);
                }
                Some(self.start().wrapping_add(rng.next_below(span) as $t))
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<A> {
    _marker: std::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> Option<A> {
        Some(A::arbitrary(rng))
    }
}

/// The canonical strategy for all values of `A`.
#[must_use]
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Collection / option / numeric strategies
// ---------------------------------------------------------------------------

/// `proptest::collection` — strategies over containers.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Lengths accepted by [`vec`]: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.hi_exclusive - self.size.lo).max(1) as u64;
            let len = self.size.lo + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `proptest::option` — strategies over `Option<T>`.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>` with inner strategy `S`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` roughly 3 times out of 4, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<Option<S::Value>> {
            if rng.next_below(4) == 0 {
                Some(None)
            } else {
                self.inner.sample(rng).map(Some)
            }
        }
    }
}

/// `proptest::num` — full-domain numeric strategies.
pub mod num {
    /// Strategies over `f64`.
    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Strategy producing every `f64` bit pattern, including NaN,
        /// infinities, and subnormals.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// All `f64` values (totality testing).
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;

            fn sample(&self, rng: &mut TestRng) -> Option<f64> {
                Some(f64::from_bits(rng.next_u64()))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` passing cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one generated case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestCaseResult {
    /// The case ran and all assertions held.
    Pass,
    /// A filter rejected the drawn inputs; redraw.
    Reject,
}

/// Drives one property: draws cases from the deterministic RNG seeded by
/// `name` until `config.cases` have passed. Panics (failing the test) if
/// filters reject too many draws.
pub fn run_proptest(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(100).max(1_000);
    while passed < config.cases {
        match case(&mut rng) {
            TestCaseResult::Pass => passed += 1,
            TestCaseResult::Reject => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{name}: too many filter rejects ({rejected}) after {passed} passing cases"
                );
            }
        }
    }
}

/// Defines deterministic property tests.
///
/// Accepts the same shape as upstream `proptest!`: an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items whose
/// arguments use `pattern in strategy` binders.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; expands each test item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_proptest(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(
                        let $arg = match $crate::Strategy::sample(&($strategy), __rng) {
                            ::std::option::Option::Some(v) => v,
                            ::std::option::Option::None => {
                                return $crate::TestCaseResult::Reject;
                            }
                        };
                    )*
                    $body
                    $crate::TestCaseResult::Pass
                },
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property body (panics on failure, which
/// reproduces deterministically thanks to the fixed per-test seed).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

/// The usual glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = TestRng::from_name("range");
        let strat = 1.5f64..9.25;
        for _ in 0..1_000 {
            let v = strat.sample(&mut rng).unwrap();
            assert!((1.5..9.25).contains(&v));
        }
    }

    #[test]
    fn int_range_stays_in_bounds() {
        let mut rng = TestRng::from_name("range-int");
        let strat = 4u64..256;
        for _ in 0..1_000 {
            let v = strat.sample(&mut rng).unwrap();
            assert!((4..256).contains(&v));
        }
    }

    #[test]
    fn filter_rejects_propagate() {
        let mut rng = TestRng::from_name("filter");
        let strat = (0u64..10).prop_filter("even only", |v| v % 2 == 0);
        let mut seen_reject = false;
        for _ in 0..100 {
            match strat.sample(&mut rng) {
                Some(v) => assert_eq!(v % 2, 0),
                None => seen_reject = true,
            }
        }
        assert!(seen_reject);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(x in 0.0f64..1.0, n in 1u32..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }
    }
}
