//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the input item
//! is parsed by walking raw `TokenTree`s, and the generated impl is built
//! as a source string and re-parsed into a `TokenStream`.
//!
//! Supported shapes (everything this workspace derives on):
//! - structs with named fields, honouring `#[serde(skip)]` and
//!   `#[serde(default)]` per field;
//! - tuple structs — a single-field (newtype) struct serializes
//!   transparently as its inner value (`#[serde(transparent)]` is accepted
//!   and is the same behaviour), multi-field structs as arrays;
//! - enums whose variants all carry no data, serialized as the variant
//!   name string;
//! - generic type parameters (each parameter is bounded by the derived
//!   trait).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone, Default)]
struct FieldAttrs {
    skip: bool,
    default: bool,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum Shape {
    Named(Vec<Field>),
    Tuple(Vec<FieldAttrs>),
    Unit,
    Enum(Vec<String>),
}

#[derive(Debug)]
struct Item {
    name: String,
    type_params: Vec<String>,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().unwrap()
}

/// Parses one `#[serde(...)]`-style attribute body into field flags.
fn apply_serde_attr(group: &proc_macro::Group, attrs: &mut FieldAttrs) {
    let mut trees = group.stream().into_iter();
    match trees.next() {
        Some(TokenTree::Ident(word)) if word.to_string() == "serde" => {}
        _ => return, // not a serde attribute (doc comment, allow, ...)
    }
    if let Some(TokenTree::Group(args)) = trees.next() {
        for tok in args.stream() {
            if let TokenTree::Ident(flag) = tok {
                match flag.to_string().as_str() {
                    "skip" => attrs.skip = true,
                    "default" => attrs.default = true,
                    // `transparent` is the native behaviour for newtypes.
                    _ => {}
                }
            }
        }
    }
}

/// Consumes leading `#[...]` attributes, folding serde flags into `attrs`.
fn skip_attributes(tokens: &[TokenTree], mut idx: usize, attrs: &mut FieldAttrs) -> usize {
    while idx < tokens.len() {
        match &tokens[idx] {
            TokenTree::Punct(p) if p.as_char() == '#' => match tokens.get(idx + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    apply_serde_attr(g, attrs);
                    idx += 2;
                }
                _ => break,
            },
            _ => break,
        }
    }
    idx
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn skip_visibility(tokens: &[TokenTree], mut idx: usize) -> usize {
    if let Some(TokenTree::Ident(word)) = tokens.get(idx) {
        if word.to_string() == "pub" {
            idx += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(idx) {
                if g.delimiter() == Delimiter::Parenthesis {
                    idx += 1;
                }
            }
        }
    }
    idx
}

/// Consumes tokens of a type (or expression) until a top-level `,`,
/// tracking `<...>` nesting so generic arguments don't split fields.
fn skip_until_comma(tokens: &[TokenTree], mut idx: usize) -> usize {
    let mut angle_depth = 0i32;
    while idx < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[idx] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return idx,
                _ => {}
            }
        }
        idx += 1;
    }
    idx
}

fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut idx = 0;
    while idx < tokens.len() {
        let mut attrs = FieldAttrs::default();
        idx = skip_attributes(&tokens, idx, &mut attrs);
        idx = skip_visibility(&tokens, idx);
        let name = match tokens.get(idx) {
            Some(TokenTree::Ident(word)) => word.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
            None => break,
        };
        idx += 1;
        match tokens.get(idx) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => idx += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        idx = skip_until_comma(&tokens, idx);
        idx += 1; // past the comma (or end)
        fields.push(Field { name, attrs });
    }
    Ok(fields)
}

fn parse_tuple_fields(group: &proc_macro::Group) -> Vec<FieldAttrs> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut idx = 0;
    while idx < tokens.len() {
        let mut attrs = FieldAttrs::default();
        idx = skip_attributes(&tokens, idx, &mut attrs);
        idx = skip_visibility(&tokens, idx);
        if idx >= tokens.len() {
            break;
        }
        idx = skip_until_comma(&tokens, idx);
        idx += 1;
        fields.push(attrs);
    }
    fields
}

fn parse_enum_variants(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut idx = 0;
    while idx < tokens.len() {
        let mut attrs = FieldAttrs::default();
        idx = skip_attributes(&tokens, idx, &mut attrs);
        let name = match tokens.get(idx) {
            Some(TokenTree::Ident(word)) => word.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
            None => break,
        };
        idx += 1;
        match tokens.get(idx) {
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{name}` carries data; the vendored serde derive \
                     only supports unit-variant enums"
                ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                idx += 1;
                idx = skip_until_comma(&tokens, idx);
            }
            _ => {}
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(idx) {
            if p.as_char() == ',' {
                idx += 1;
            }
        }
        variants.push(name);
    }
    Ok(variants)
}

/// Parses the generic parameter list after the item name. Only plain type
/// parameters (optionally bounded) and lifetimes are supported.
fn parse_generics(tokens: &[TokenTree], mut idx: usize) -> Result<(Vec<String>, usize), String> {
    let mut params = Vec::new();
    match tokens.get(idx) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => idx += 1,
        _ => return Ok((params, idx)),
    }
    let mut depth = 1i32;
    let mut at_param_start = true;
    while idx < tokens.len() {
        match &tokens[idx] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    return Ok((params, idx + 1));
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => at_param_start = true,
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                // Lifetime parameter: skip the following ident.
                idx += 1;
                at_param_start = false;
            }
            TokenTree::Ident(word) if at_param_start => {
                let w = word.to_string();
                if w == "const" {
                    return Err("const generics are not supported by the vendored derive".into());
                }
                params.push(w);
                at_param_start = false;
            }
            _ => {}
        }
        idx += 1;
    }
    Err("unbalanced generic parameter list".into())
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut container_attrs = FieldAttrs::default();
    let mut idx = skip_attributes(&tokens, 0, &mut container_attrs);
    idx = skip_visibility(&tokens, idx);
    let keyword = match tokens.get(idx) {
        Some(TokenTree::Ident(word)) => word.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    idx += 1;
    let name = match tokens.get(idx) {
        Some(TokenTree::Ident(word)) => word.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    idx += 1;
    let (type_params, idx) = parse_generics(&tokens, idx)?;
    if let Some(TokenTree::Ident(word)) = tokens.get(idx) {
        if word.to_string() == "where" {
            return Err("`where` clauses are not supported by the vendored derive".into());
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(idx) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(parse_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => return Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match tokens.get(idx) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_enum_variants(g)?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Item {
        name,
        type_params,
        shape,
    })
}

/// `impl<T: Bound, ...>` prefix and `Name<T, ...>` suffix for an item.
fn generics_for(item: &Item, bound: &str) -> (String, String) {
    if item.type_params.is_empty() {
        return ("impl".into(), item.name.clone());
    }
    let params = item
        .type_params
        .iter()
        .map(|p| format!("{p}: {bound}"))
        .collect::<Vec<_>>()
        .join(", ");
    let args = item.type_params.join(", ");
    (
        format!("impl<{params}>"),
        format!("{}<{args}>", item.name),
    )
}

fn generate_serialize(item: &Item) -> String {
    let (impl_prefix, self_ty) = generics_for(item, "::serde::Serialize");
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.attrs.skip) {
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from({:?}), \
                     ::serde::Serialize::to_value(&self.{})));\n",
                    f.name, f.name
                ));
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(__fields)"
            )
        }
        Shape::Tuple(fields) if fields.len() == 1 => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::Tuple(fields) => {
            let items = (0..fields.len())
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| format!("{}::{v} => {:?},", item.name, v))
                .collect::<String>();
            format!(
                "::serde::Value::Str(::std::string::String::from(match self {{ {arms} }}))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n{impl_prefix} ::serde::Serialize for {self_ty} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let (impl_prefix, self_ty) = generics_for(item, "::serde::Deserialize");
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.attrs.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else if f.attrs.default {
                    inits.push_str(&format!(
                        "{}: match __v.field({:?}) {{\n\
                         ::std::result::Result::Ok(__f) => ::serde::Deserialize::from_value(__f)?,\n\
                         ::std::result::Result::Err(_) => ::std::default::Default::default(),\n\
                         }},\n",
                        f.name, f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{}: ::serde::Deserialize::from_value(__v.field({:?})?)?,\n",
                        f.name, f.name
                    ));
                }
            }
            format!(
                "::std::result::Result::Ok({} {{\n{inits}}})",
                item.name
            )
        }
        Shape::Tuple(fields) if fields.len() == 1 => format!(
            "::std::result::Result::Ok({}(::serde::Deserialize::from_value(__v)?))",
            item.name
        ),
        Shape::Tuple(fields) => {
            let n = fields.len();
            let inits = (0..n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let __items = __v.elements()?;\n\
                 if __items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::new(\
                 ::std::format!(\"expected {n}-element array, found {{}}\", __items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({}({inits}))",
                item.name
            )
        }
        Shape::Unit => format!("::std::result::Result::Ok({})", item.name),
        Shape::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok({}::{v}),",
                        v, item.name
                    )
                })
                .collect::<String>();
            format!(
                "match __v.str()? {{\n{arms}\n__other => ::std::result::Result::Err(\
                 ::serde::Error::new(::std::format!(\
                 \"unknown variant `{{}}` of {}\", __other))),\n}}",
                item.name
            )
        }
    };
    format!(
        "#[automatically_derived]\n{impl_prefix} ::serde::Deserialize for {self_ty} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}

/// Derives `serde::Serialize` (vendored subset).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_serialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("derive(Serialize) codegen error: {e}"))),
        Err(e) => compile_error(&format!("derive(Serialize): {e}")),
    }
}

/// Derives `serde::Deserialize` (vendored subset).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_deserialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("derive(Deserialize) codegen error: {e}"))),
        Err(e) => compile_error(&format!("derive(Deserialize): {e}")),
    }
}
