//! Offline API-compatible subset of `serde`.
//!
//! Provides the [`Serialize`] / [`Deserialize`] traits over an owned
//! [`Value`] data model, implementations for the primitive and container
//! types this workspace serializes, and re-exports the derive macros from
//! `serde_derive`. See `vendor/README.md` for scope and caveats.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The self-describing data model every serializable type lowers into.
///
/// Numbers keep their integer/float distinction so `u64` quantities (trace
/// addresses, instruction counts) survive round-trips losslessly even
/// beyond 2^53.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (used for negative integers).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Finite IEEE-754 double.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered map (insertion order is preserved — important for
    /// byte-identical re-serialization).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if `self` is not an object or lacks the field.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// The elements of an array value.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if `self` is not an array.
    pub fn elements(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error::new(format!("expected array, found {}", other.kind()))),
        }
    }

    /// The string payload of a string value.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if `self` is not a string.
    pub fn str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::new(format!("expected string, found {}", other.kind()))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(Error::new(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::new(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::UInt(n as u64)
                } else {
                    Value::Int(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n).map_err(|_| {
                        Error::new(format!("integer {n} out of i64 range"))
                    })?,
                    other => {
                        return Err(Error::new(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::new(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let raw = u64::from_value(v)?;
        usize::try_from(raw).map_err(|_| Error::new(format!("integer {raw} out of usize range")))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error::new(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.str().map(str::to_owned)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.elements()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.elements()?;
        if items.len() != N {
            return Err(Error::new(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::new("array length changed during deserialization"))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let some = Some(3.5f64).to_value();
        assert_eq!(Option::<f64>::from_value(&some).unwrap(), Some(3.5));
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn array_length_checked() {
        let v = Value::Array(vec![Value::UInt(1), Value::UInt(2)]);
        assert!(<[u64; 2]>::from_value(&v).is_ok());
        assert!(<[u64; 3]>::from_value(&v).is_err());
    }

    #[test]
    fn u64_precision_preserved() {
        let big = u64::MAX - 1;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }
}
