//! Workload awareness: quantifies the paper's second headline result —
//! qualifying for worst-case operating conditions over-designs the
//! processor for most real workloads, and increasingly so with scaling.
//!
//! Runs the coolest and hottest benchmarks of the suite plus a synthetic
//! worst case at 180 nm and 65 nm (1.0 V), and prints how much reliability
//! budget worst-case qualification wastes on a typical application.
//!
//! ```text
//! cargo run --example workload_awareness --release
//! ```

use ramp_core::{run_study, NodeId, StudyConfig};
use ramp_trace::Suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduced study: a representative cool / typical / hot subset keeps
    // the example fast while preserving the spread.
    let cfg = StudyConfig {
        nodes: vec![NodeId::N180, NodeId::N65HighV],
        ..StudyConfig::quick()
    }
    .with_benchmarks(&["ammp", "gzip", "crafty"])?;
    let results = run_study(&cfg)?;

    println!("worst-case qualification margin vs real workloads");
    println!();
    for node in [NodeId::N180, NodeId::N65HighV] {
        let wc = results
            .worst_case(node)
            .expect("worst case computed per node")
            .fit
            .total();
        println!("{}:", node.label());
        for r in results.app_results().iter().filter(|r| r.node == node) {
            let fit = r.fit.total();
            println!(
                "  {:<8} ({}) {:>8.0} FIT — worst-case qualification overestimates by {:>5.0}%",
                r.app,
                match r.suite {
                    Suite::Fp => "FP",
                    Suite::Int => "INT",
                },
                fit.value(),
                (wc.value() - fit.value()) / fit.value() * 100.0
            );
        }
        println!("  worst-case operating point: {:>8.0} FIT", wc.value());
        println!();
    }
    println!("The gap between worst-case and application-specific failure rates is");
    println!("why the paper argues for workload-aware reliability qualification");
    println!("(dynamic reliability management) rather than static worst-case margins.");
    Ok(())
}
