//! Scaling sweep: take one benchmark and remap it across all five
//! technology points, reproducing a single line of the paper's Figure 3.
//!
//! Demonstrates the constant-sink-temperature methodology: the 180 nm run
//! anchors each scaled node's heat-sink resistance.
//!
//! ```text
//! cargo run --example scaling_sweep --release [benchmark]
//! ```

use ramp_core::mechanisms::{standard_models, MechanismKind};
use ramp_core::{run_app_on_node, NodeId, PipelineConfig, Qualification, TechNode};
use ramp_trace::spec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "wupwise".into());
    let profile = spec::profile(&name)?;
    let cfg = PipelineConfig::quick();
    let models = standard_models();

    // Reference run first: it anchors both the qualification and the
    // constant-sink-temperature rule.
    let reference = run_app_on_node(
        &profile,
        &TechNode::get(NodeId::N180),
        &cfg,
        &models,
        None,
    )?;
    let qual = Qualification::from_reference_runs(&[reference.rates])
        .map_err(ramp_core::RampError::Qualification)?;

    println!("{name}: lifetime reliability across technology generations");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>9} | {:>7} {:>7} {:>7} {:>7} {:>8}",
        "node", "power W", "sink K", "maxT K", "ΔFIT/180", "EM", "SM", "TDDB", "TC", "total"
    );

    let base_fit = qual.fit_report(&reference.rates).total();
    for id in NodeId::ALL {
        let run = if id == NodeId::N180 {
            reference.clone()
        } else {
            run_app_on_node(
                &profile,
                &TechNode::get(id),
                &cfg,
                &models,
                Some(reference.avg_total()),
            )?
        };
        let report = qual.fit_report(&run.rates);
        print!(
            "{:<12} {:>8.1} {:>8.1} {:>8.1} {:>+8.0}% |",
            id.label(),
            run.avg_total().value(),
            run.sink_temperature.value(),
            run.max_temperature().value(),
            report.total().percent_increase_over(base_fit),
        );
        for m in MechanismKind::ALL {
            print!(" {:>7.0}", report.mechanism_total(m).value());
        }
        println!(" {:>8.0}", report.total().value());
    }
    println!();
    println!("Expected shape (paper): FIT roughly flat to 130nm, then a sharp rise");
    println!("beyond 90nm, dominated by TDDB and EM; the 1.0V 65nm variant is far");
    println!("worse than the 0.9V one.");
    Ok(())
}
