//! Quickstart: evaluate the lifetime reliability of one benchmark on the
//! 180 nm base processor and print the per-mechanism FIT breakdown.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use ramp_core::mechanisms::{standard_models, MechanismKind};
use ramp_core::{
    run_app_on_node, NodeId, PipelineConfig, Qualification, TechNode,
};
use ramp_microarch::Structure;
use ramp_trace::spec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a workload and a technology node.
    let profile = spec::profile("gzip")?;
    let node = TechNode::get(NodeId::N180);

    // 2. Run the full pipeline: trace → timing → power → temperature →
    //    failure-rate accumulation. `quick()` keeps the run short; use
    //    `PipelineConfig::default()` for production-length runs.
    let models = standard_models();
    let run = run_app_on_node(&profile, &node, &PipelineConfig::quick(), &models, None)?;

    println!("workload          : {} ({})", profile.name, profile.suite);
    println!("node              : {}", node.id);
    println!("IPC               : {:.2}", run.ipc);
    println!("average power     : {:.1} (dynamic {:.1} + leakage {:.1})",
             run.avg_total(), run.avg_dynamic, run.avg_leakage);
    println!("heat sink         : {:.1}", run.sink_temperature);
    println!("hottest structure : {:.1}", run.max_temperature());

    // 3. Qualify: fix the proportionality constants so this workload sees
    //    the paper's 4000-FIT (≈30-year) budget, split equally across the
    //    four mechanisms. A real study qualifies over all 16 benchmarks —
    //    see `ramp_core::run_study`.
    let qualification = Qualification::from_reference_runs(&[run.rates])
        .map_err(ramp_core::RampError::Qualification)?;
    let report = qualification.fit_report(&run.rates);

    println!();
    println!("FIT breakdown (qualified to 4000 FIT total):");
    for m in MechanismKind::ALL {
        println!("  {:<5} {:>8.1} FIT", m.label(), report.mechanism_total(m).value());
    }
    println!("  total {:>8.1} FIT  (MTTF {})", report.total().value(), report.mttf());

    println!();
    println!("per-structure totals:");
    for s in Structure::ALL {
        println!(
            "  {:<4} {:>8.1} FIT   avg T {:.1}   activity {:.2}",
            s.mnemonic(),
            report.structure_total(s).value(),
            run.rates.average_temperature()[s],
            run.avg_activity[s],
        );
    }
    Ok(())
}
