//! Lifetime outlook: translate FIT rates into the numbers a product team
//! actually reasons about — fleet fallout over a service life, the 1 %
//! fallout age, and which mechanism/structure breaks first (Monte Carlo).
//!
//! ```text
//! cargo run --example lifetime_outlook --release
//! ```

use ramp_core::lifetime::{LifetimeDistribution, MonteCarloLifetime};
use ramp_core::mechanisms::{standard_models, MechanismKind};
use ramp_core::{run_app_on_node, NodeId, PipelineConfig, Qualification, TechNode};
use ramp_trace::spec;
use ramp_units::Years;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let models = standard_models();
    let cfg = PipelineConfig::quick();
    let profile = spec::profile("gap")?;

    let reference = run_app_on_node(&profile, &TechNode::reference(), &cfg, &models, None)?;
    let qual = Qualification::from_reference_runs(&[reference.rates])
        .map_err(ramp_core::RampError::Qualification)?;

    println!("gap: lifetime outlook per technology node");
    println!(
        "{:<12} {:>9} {:>11} {:>14} {:>14}",
        "node", "FIT", "MTTF (yr)", "1% fallout yr", "fail @ 7 yr"
    );
    let mut reports = Vec::new();
    for id in NodeId::ALL {
        let run = if id == NodeId::N180 {
            reference.clone()
        } else {
            run_app_on_node(
                &profile,
                &TechNode::get(id),
                &cfg,
                &models,
                Some(reference.avg_total()),
            )?
        };
        let report = qual.fit_report(&run.rates);
        let dist = LifetimeDistribution::from_report(&report);
        println!(
            "{:<12} {:>9.0} {:>11.1} {:>14.2} {:>13.1}%",
            id.label(),
            report.total().value(),
            dist.mttf_years().value(),
            dist.percentile_years(0.01).value(),
            dist.failure_probability_by_years(Years::new(7.0)?) * 100.0,
        );
        reports.push((id, report));
    }

    // Who breaks first? Monte Carlo over the 65 nm (1.0 V) report.
    let (_, report65) = reports
        .iter()
        .find(|(id, _)| *id == NodeId::N65HighV)
        .expect("65 nm evaluated above");
    let mut mc = MonteCarloLifetime::new(report65, 2004);
    let blame = mc.blame_histogram(50_000);
    println!();
    println!("first-failure blame at 65nm (1.0V), 50k Monte Carlo lifetimes:");
    for m in MechanismKind::ALL {
        println!("  {:<5} {:>5.1}%", m.label(), blame[m] * 100.0);
    }
    println!();
    println!("The 30-year MTTF intuition hides how quickly the 1% fallout age —");
    println!("what warranty planning actually uses — collapses with scaling.");
    Ok(())
}
