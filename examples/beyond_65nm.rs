//! Beyond the paper's horizon: project the study one generation further,
//! to a 45 nm point that continues the paper's scaling assumptions
//! (supply pinned at the 1.0 V noise floor, J_max at its floor, leakage
//! density still climbing). The paper's §6 warns of "potentially large and
//! sharp drops in long-term reliability, especially beyond 90 nm" — this
//! extrapolation shows how sharp.
//!
//! ```text
//! cargo run --example beyond_65nm --release
//! ```

use ramp_core::mechanisms::{standard_models, MechanismKind};
use ramp_core::{run_app_on_node, NodeId, PipelineConfig, Qualification, TechNode};
use ramp_core::lifetime::LifetimeDistribution;
use ramp_trace::spec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let models = standard_models();
    let cfg = PipelineConfig::quick();
    let profile = spec::profile("facerec")?;

    let reference = run_app_on_node(&profile, &TechNode::reference(), &cfg, &models, None)?;
    let qual = Qualification::from_reference_runs(&[reference.rates])
        .map_err(ramp_core::RampError::Qualification)?;

    println!("facerec: extending the scaling study one generation past the paper");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>10}",
        "node", "power W", "maxT K", "EM", "SM", "TDDB", "total FIT", "MTTF (yr)"
    );
    for id in [
        NodeId::N180,
        NodeId::N90,
        NodeId::N65HighV,
        NodeId::N45Projected,
    ] {
        let run = if id == NodeId::N180 {
            reference.clone()
        } else {
            run_app_on_node(
                &profile,
                &TechNode::get(id),
                &cfg,
                &models,
                Some(reference.avg_total()),
            )?
        };
        let report = qual.fit_report(&run.rates);
        println!(
            "{:<12} {:>8.1} {:>8.1} {:>8.0} {:>8.0} {:>8.0} {:>9.0} {:>10.1}",
            id.label(),
            run.avg_total().value(),
            run.max_temperature().value(),
            report.mechanism_total(MechanismKind::Em).value(),
            report.mechanism_total(MechanismKind::Sm).value(),
            report.mechanism_total(MechanismKind::Tddb).value(),
            report.total().value(),
            LifetimeDistribution::from_report(&report).mttf_years().value(),
        );
    }
    println!();
    println!("Every assumption in the 45nm row continues a published trend (see");
    println!("NodeId::N45Projected); the collapse in MTTF is the paper's warning,");
    println!("one generation louder. This is a projection, not a Table-4 datum.");
    Ok(())
}
