//! Dynamic-voltage-scaling what-if: the TDDB model keeps its voltage
//! dependence precisely so DVS-style studies are possible (paper §2,
//! footnote 1). This example sweeps the 65 nm supply between the paper's
//! two design points and beyond, showing the reliability cliff that makes
//! the 1.0 V "realistic" variant so much worse than the 0.9 V one.
//!
//! ```text
//! cargo run --example dvs_what_if --release
//! ```

use ramp_core::mechanisms::{standard_models, MechanismKind};
use ramp_core::{run_app_on_node, NodeId, PipelineConfig, Qualification, TechNode};
use ramp_trace::spec;
use ramp_units::Volts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = spec::profile("apsi")?;
    let cfg = PipelineConfig::quick();
    let models = standard_models();

    // Qualify at the 180 nm reference as usual.
    let reference = run_app_on_node(
        &profile,
        &TechNode::get(NodeId::N180),
        &cfg,
        &models,
        None,
    )?;
    let qual = Qualification::from_reference_runs(&[reference.rates])
        .map_err(ramp_core::RampError::Qualification)?;

    println!("apsi @ 65nm: supply-voltage sweep (DVS what-if)");
    println!(
        "{:<8} {:>9} {:>8} {:>9} {:>9} {:>9}",
        "Vdd", "power W", "maxT K", "TDDB FIT", "EM FIT", "total FIT"
    );
    for millivolts in (850..=1100).step_by(50) {
        let vdd = Volts::new(f64::from(millivolts) / 1000.0)?;
        // Build a custom 65 nm operating point: same silicon, DVS'd rail.
        // Leakage density interpolates between the two published 65 nm
        // variants (0.54 W/mm² at 0.9 V, 0.60 at 1.0 V).
        let mut node = TechNode::get(NodeId::N65HighV);
        node.vdd = vdd;
        node.leakage_density = ramp_units::PowerDensity::new(
            0.54 + (vdd.value() - 0.9) * 0.6,
        )?;
        let run = run_app_on_node(&profile, &node, &cfg, &models, Some(reference.avg_total()))?;
        let report = qual.fit_report(&run.rates);
        println!(
            "{:<8} {:>9.1} {:>8.1} {:>9.0} {:>9.0} {:>9.0}",
            format!("{:.2} V", vdd.value()),
            run.avg_total().value(),
            run.max_temperature().value(),
            report.mechanism_total(MechanismKind::Tddb).value(),
            report.mechanism_total(MechanismKind::Em).value(),
            report.total().value(),
        );
    }
    println!();
    println!("Raising the rail costs reliability twice: directly through the TDDB");
    println!("voltage term, and indirectly because V² dynamic power heats the die.");
    Ok(())
}
