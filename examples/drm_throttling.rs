//! Dynamic reliability management: the paper's proposed answer to the
//! widening worst-case/typical gap. Qualify for the expected case, then
//! let a run-time controller throttle voltage/frequency whenever the
//! executing workload pushes the running-average failure rate over budget.
//!
//! This example manages a hot workload (crafty) on the 65 nm (1.0 V) node
//! against the 4000-FIT qualification budget and prints the reliability /
//! performance trade the controller found.
//!
//! ```text
//! cargo run --example drm_throttling --release
//! ```

use ramp_core::drm::{run_with_drm, DrmPolicy, DvsLevel};
use ramp_core::mechanisms::standard_models;
use ramp_core::{run_app_on_node, NodeId, PipelineConfig, Qualification, TechNode};
use ramp_trace::spec;
use ramp_units::Fit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let models = standard_models();
    let cfg = PipelineConfig::quick();
    let profile = spec::profile("crafty")?;

    // Qualify at 180 nm: 4000 FIT total across the four mechanisms.
    let reference = run_app_on_node(&profile, &TechNode::reference(), &cfg, &models, None)?;
    let qual = Qualification::from_reference_runs(&[reference.rates])
        .map_err(ramp_core::RampError::Qualification)?;

    let node = TechNode::get(NodeId::N65HighV);
    let ladder = DvsLevel::standard_ladder(&node);
    println!("DVS ladder at {}:", node.id);
    for (i, l) in ladder.iter().enumerate() {
        println!(
            "  level {i}: {:.2} V / {:.2} GHz  (power x{:.2}, performance x{:.2})",
            l.voltage.value(),
            l.frequency.value(),
            l.power_factor(&node),
            l.performance_factor(&node),
        );
    }

    let policy = DrmPolicy {
        fit_budget: Fit::new(6000.0)?,
        decision_intervals: 10,
        hysteresis: 0.05,
    };
    let outcome = run_with_drm(
        &profile,
        &node,
        &cfg,
        &models,
        &qual,
        policy,
        ladder,
        Some(reference.avg_total()),
    )?;

    println!();
    println!("crafty @ {} under a {:.0}-FIT budget:", node.id, policy.fit_budget.value());
    println!("  unmanaged FIT       : {:>8.0}", outcome.unmanaged_fit.value());
    println!("  DRM-managed FIT     : {:>8.0}", outcome.managed_fit.value());
    println!(
        "  performance retained: {:>7.1}%",
        outcome.relative_performance * 100.0
    );
    println!("  level residency     : {:?}",
        outcome
            .level_residency
            .iter()
            .map(|r| format!("{:.0}%", r * 100.0))
            .collect::<Vec<_>>());
    println!("  level transitions   : {}", outcome.transitions);
    println!();
    println!("A design qualified for this workload's worst case would give up that");
    println!("performance *permanently*; DRM pays it only while the budget demands.");
    Ok(())
}
