//! Custom workload: the trace crate is not limited to the paper's SPEC2K
//! profiles — any statistical profile can be evaluated. This example
//! builds a synthetic streaming workload (long sequential scans, almost no
//! branches, poor cache locality) and compares its reliability profile
//! against a pointer-chasing workload on the 90 nm node.
//!
//! ```text
//! cargo run --example custom_workload --release
//! ```

use ramp_core::mechanisms::{standard_models, MechanismKind};
use ramp_core::{run_app_on_node, NodeId, PipelineConfig, Qualification, TechNode};
use ramp_trace::{
    BenchmarkProfile, BranchModel, InstructionMix, MemoryModel, PhaseModel, PublishedStats,
    Suite,
};

fn streaming() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "streamer".into(),
        suite: Suite::Fp,
        mix: InstructionMix {
            int_alu: 0.25,
            int_mul: 0.01,
            int_div: 0.0,
            fp_add: 0.20,
            fp_mul: 0.18,
            fp_div: 0.01,
            load: 0.22,
            store: 0.10,
            branch: 0.02,
            cond_reg: 0.01,
        },
        mean_dep_distance: 24.0,
        memory: MemoryModel {
            hot_fraction: 0.10,
            warm_fraction: 0.05,
            hot_bytes: 16 << 10,
            warm_bytes: 768 << 10,
            cold_bytes: 256 << 20,
            sequential_fraction: 0.97, // pure streaming
        },
        branches: BranchModel {
            static_sites: 64,
            random_fraction: 0.01,
            taken_bias: 0.98,
        },
        code_bytes: 8 << 10,
        phases: PhaseModel::steady(),
        published: PublishedStats {
            ipc: 1.0,
            power_w: 1.0,
        }, // no published reference: custom workload
        seed: 0xBEEF,
    }
}

fn pointer_chaser() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "chaser".into(),
        suite: Suite::Int,
        mix: InstructionMix {
            int_alu: 0.40,
            int_mul: 0.0,
            int_div: 0.0,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            load: 0.38,
            store: 0.04,
            branch: 0.16,
            cond_reg: 0.02,
        },
        mean_dep_distance: 1.6, // serial: each load feeds the next address
        memory: MemoryModel {
            hot_fraction: 0.55,
            warm_fraction: 0.25,
            hot_bytes: 16 << 10,
            warm_bytes: 768 << 10,
            cold_bytes: 128 << 20,
            sequential_fraction: 0.02, // random walks
        },
        branches: BranchModel {
            static_sites: 256,
            random_fraction: 0.20,
            taken_bias: 0.90,
        },
        code_bytes: 16 << 10,
        phases: PhaseModel::steady(),
        published: PublishedStats {
            ipc: 1.0,
            power_w: 1.0,
        },
        seed: 0xF00D,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = PipelineConfig::quick();
    let models = standard_models();
    let node = TechNode::get(NodeId::N90);

    println!("custom workloads on the 90nm node");
    println!();

    let mut runs = Vec::new();
    for profile in [streaming(), pointer_chaser()] {
        let run = run_app_on_node(&profile, &node, &cfg, &models, None)?;
        println!(
            "{:<10} IPC {:.2}  power {:.1}  hottest {:.1}  FPU act {:.2}  LSU act {:.2}",
            run.app,
            run.ipc,
            run.avg_total(),
            run.max_temperature(),
            run.avg_activity[ramp_microarch::Structure::Fpu],
            run.avg_activity[ramp_microarch::Structure::Lsu],
        );
        runs.push(run);
    }

    // Qualify over this two-workload "suite" and compare FIT signatures.
    let rates: Vec<_> = runs.iter().map(|r| r.rates).collect();
    let qual = Qualification::from_reference_runs(&rates)
        .map_err(ramp_core::RampError::Qualification)?;
    println!();
    println!(
        "{:<10} {:>7} {:>7} {:>7} {:>7} {:>8}",
        "workload", "EM", "SM", "TDDB", "TC", "total"
    );
    for run in &runs {
        let report = qual.fit_report(&run.rates);
        print!("{:<10}", run.app);
        for m in MechanismKind::ALL {
            print!(" {:>7.0}", report.mechanism_total(m).value());
        }
        println!(" {:>8.0}", report.total().value());
    }
    println!();
    println!("The hot, busy streamer ages fastest through EM (activity-driven");
    println!("current density), while the stalled chaser runs cooler everywhere.");
    Ok(())
}
