//! Trace files: capture a synthetic workload trace to disk in the compact
//! binary format, then replay it through the timing simulator — the
//! capture-once / replay-many workflow every trace-driven methodology
//! (including the paper's) is built on.
//!
//! ```text
//! cargo run --example trace_files --release
//! ```

use ramp_microarch::{MachineConfig, Engine};
use ramp_trace::{read_trace, spec, write_trace, TraceGenerator};
use std::io::{BufReader, BufWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = spec::profile("twolf")?;
    let n = 200_000usize;
    let path = std::env::temp_dir().join("ramp-twolf.trace");

    // Capture.
    let mut writer = BufWriter::new(std::fs::File::create(&path)?);
    let written = write_trace(&mut writer, TraceGenerator::new(&profile).take(n))?;
    drop(writer);
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "captured {written} records to {} ({bytes} bytes, {:.1} bytes/record)",
        path.display(),
        bytes as f64 / written as f64
    );

    // Replay from disk.
    let mut reader = BufReader::new(std::fs::File::open(&path)?);
    let records = read_trace(&mut reader)?;
    let cfg = MachineConfig::power4_180nm();
    let mut engine = Engine::new(&cfg, 1_100);
    for rec in &records {
        engine.step(rec);
    }
    let replayed = engine.finish();

    // Live generation for comparison: identical by determinism.
    let mut live_engine = Engine::new(&cfg, 1_100);
    for rec in TraceGenerator::new(&profile).take(n) {
        live_engine.step(&rec);
    }
    let live = live_engine.finish();

    println!(
        "replayed IPC {:.4} vs live IPC {:.4} (must match exactly: {})",
        replayed.stats.ipc(),
        live.stats.ipc(),
        replayed.stats == live.stats
    );
    assert_eq!(replayed.stats, live.stats, "file replay must be lossless");
    std::fs::remove_file(&path)?;
    Ok(())
}
